package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Compaction merges the sealed prefix — every segment except the active
// one — into a single new segment, dropping superseded records and
// tombstones. Only the full prefix is ever compacted: with
// first-write-wins puts and tombstone deletes, replay order is
// semantics, and merging an interior range could resurrect a key whose
// tombstone lived in a segment the merge dropped. Compacting the whole
// prefix is safe because nothing replays before it: a tombstone that is
// still shadowing something has that something inside the prefix too.
//
// The output is written to a temp file, fsync'd, renamed to
// seg-<firstID>-<firstGen+1>.vmat, and only then committed into the
// manifest — so a crash at any point leaves either the old layout or
// the new one, never a mix (the unlisted survivor is deleted on the
// next open). Readers are never blocked: old segments stay open and
// readable until every index entry that pointed into them has been
// repointed at the output.

// Crash-hook stage names, in execution order. The hook (an unexported
// Store field, set only by tests) returns true to abandon compaction at
// that stage, simulating a kill between two durable steps.
const (
	compactStageOutputWritten = "output-written"     // temp file synced, not yet renamed
	compactStageOutputRenamed = "output-renamed"     // output visible, manifest still old
	compactStageSwapped       = "manifest-committed" // new layout durable, old files still present
	compactStageMidDelete     = "mid-delete"         // one old segment file already removed
)

// errCompactionAborted reports a crash-hook abort; the background loop
// treats it as silence.
var errCompactionAborted = errors.New("store: compaction aborted by crash hook")

// crash consults the test-only crash hook.
func (s *Store) crash(stage string) bool {
	return s.crashAt != nil && s.crashAt(stage)
}

// Compact merges all sealed segments into one, reclaiming dead bytes.
// It is safe to call concurrently with reads and writes; concurrent
// Compact/Snapshot/Close calls serialize. A store with fewer than two
// segments (nothing sealed) returns immediately.
func (s *Store) Compact() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.closed.Load() {
		return errClosed
	}
	return s.compactLocked()
}

// compactLocked runs one compaction cycle. Caller holds maintMu.
func (s *Store) compactLocked() error {
	s.compacting.Store(true)
	defer s.compacting.Store(false)

	// Capture the sealed prefix. Segments rolled after this point stay
	// out of this cycle; they are sealed input for the next one.
	s.segMu.RLock()
	if len(s.order) < 2 {
		s.segMu.RUnlock()
		return nil
	}
	prefix := make([]*segment, len(s.order)-1)
	for i, seq := range s.order[:len(s.order)-1] {
		prefix[i] = s.segs[seq]
	}
	s.segMu.RUnlock()

	inSeqs := make(map[int64]bool, len(prefix))
	var inputBytes int64
	for _, sg := range prefix {
		inSeqs[sg.seq] = true
		inputBytes += sg.size.Load()
	}

	// Replay the prefix through a local state machine: the last
	// state-changing record per key wins within the range, and
	// tombstones drop outright — nothing earlier than the prefix exists
	// for them to shadow.
	type liveRec struct {
		segPos int
		off    int64
		length int64
	}
	state := map[string]liveRec{}
	for pos, sg := range prefix {
		_, reason, err := scanFrames(sg.f, journalMagic, func(off int64, payload []byte) error {
			var e Entry
			if jerr := json.Unmarshal(payload, &e); jerr != nil || e.Key == "" {
				return errors.New("undecodable record payload")
			}
			if e.Tomb {
				delete(state, e.Key)
				return nil
			}
			if _, dup := state[e.Key]; !dup {
				state[e.Key] = liveRec{segPos: pos, off: off, length: int64(frameHeaderLen + len(payload))}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("store: compact: scan %s: %w", filepath.Base(sg.path), err)
		}
		if reason != "" {
			// Sealed segments were verified at open; damage appearing
			// now is in-place corruption. Compacting would make the
			// loss permanent, so leave the layout alone.
			s.corrupt.Inc()
			return fmt.Errorf("store: compact: %s corrupt at offset %d (%s); refusing to merge", filepath.Base(sg.path), sg.size.Load(), reason)
		}
	}

	// Write the merged output in original record order (by source
	// position, then offset) so the result is deterministic and reads
	// preserve locality.
	keep := make([]string, 0, len(state))
	for key := range state {
		keep = append(keep, key)
	}
	sort.Slice(keep, func(i, j int) bool {
		a, b := state[keep[i]], state[keep[j]]
		if a.segPos != b.segPos {
			return a.segPos < b.segPos
		}
		return a.off < b.off
	})

	outName := segName(prefix[0].id, prefix[0].gen+1)
	outPath := filepath.Join(s.dir, outName)
	tmpPath := outPath + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: create %s: %w", tmpPath, err)
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	outRefs := make(map[string]recordRef, len(keep)) // seg filled in after open
	var outSize int64
	var buf []byte
	for _, key := range keep {
		r := state[key]
		if int64(cap(buf)) < r.length {
			buf = make([]byte, r.length)
		}
		b := buf[:r.length]
		if _, err := prefix[r.segPos].f.ReadAt(b, r.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: read record for %s: %w", key, err)
		}
		if _, err := w.Write(b); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compact: write output: %w", err)
		}
		outRefs[key] = recordRef{off: outSize, length: r.length}
		outSize += r.length
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: flush output: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: sync output: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: close output: %w", err)
	}
	if s.crash(compactStageOutputWritten) {
		return errCompactionAborted
	}
	if err := os.Rename(tmpPath, outPath); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact: publish output: %w", err)
	}
	if s.crash(compactStageOutputRenamed) {
		return errCompactionAborted
	}

	outSeg, err := openSegment(s.dir, s.nextSeq.Add(1), prefix[0].id, prefix[0].gen+1)
	if err != nil {
		os.Remove(outPath)
		return err
	}
	for _, key := range keep {
		outSeg.addLive(outRefs[key].length)
	}

	// Commit the new layout and swap the in-memory order under the
	// segment write lock (manifest commits and order changes always
	// happen together under segMu so a concurrent roll cannot interleave
	// its own commit). Old segments stay in s.segs — still readable —
	// until the index has been repointed.
	s.segMu.Lock()
	newOrder := []int64{outSeg.seq}
	segsList := []manifestSegment{{ID: outSeg.id, Gen: outSeg.gen}}
	for _, seq := range s.order {
		if inSeqs[seq] {
			continue
		}
		newOrder = append(newOrder, seq)
		sg := s.segs[seq]
		segsList = append(segsList, manifestSegment{ID: sg.id, Gen: sg.gen})
	}
	m := &manifest{Version: manifestVersion, Generation: s.generation + 1, NextID: s.nextID, Segments: segsList}
	if err := commitManifest(s.dir, m); err != nil {
		s.segMu.Unlock()
		outSeg.f.Close()
		os.Remove(outPath)
		return err
	}
	s.segs[outSeg.seq] = outSeg
	s.order = newOrder
	s.generation++
	s.segMu.Unlock()
	if s.crash(compactStageSwapped) {
		return errCompactionAborted
	}

	// Repoint every index entry that still lives in a compacted segment.
	// Keys that moved while we merged (deleted, or tombstoned and re-put
	// into the active segment) keep their current ref; their copy in the
	// output is dead on arrival.
	pred := func(seq int64) bool { return inSeqs[seq] }
	for key, ref := range outRefs {
		ref.seg = outSeg.seq
		if !s.idx.replace(key, pred, ref) {
			outSeg.recordDead(ref.length)
		}
	}

	// Now no new reads can land in the old segments; drop them. Readers
	// that already fetched a handle finish under segMu.RLock before the
	// write lock lets us through, so closing afterwards is safe.
	s.segMu.Lock()
	for _, sg := range prefix {
		delete(s.segs, sg.seq)
	}
	s.segMu.Unlock()
	for i, sg := range prefix {
		sg.f.Close()
		if err := os.Remove(sg.path); err != nil {
			s.log("store: compact: remove %s: %v", sg.path, err)
		}
		if i == 0 && s.crash(compactStageMidDelete) {
			return errCompactionAborted
		}
	}
	if err := syncDir(s.dir); err != nil {
		s.log("store: compact: %v", err)
	}

	reclaimed := inputBytes - outSize
	if reclaimed < 0 {
		reclaimed = 0
	}
	s.compactionsC.Inc()
	s.reclaimed.Add(reclaimed)
	s.refreshAccounting()
	s.log("store: compacted %d segments (%d bytes) into %s (%d bytes), reclaimed %d",
		len(prefix), inputBytes, outName, outSize, reclaimed)

	// The layout changed, so any existing snapshot is stale; write a
	// fresh one now rather than paying a full replay on the next open.
	if err := s.writeSnapshotLocked(); err != nil {
		s.log("store: compact: refresh snapshot: %v", err)
	}
	return nil
}
