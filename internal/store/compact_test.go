package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// buildDirty returns a store with several sealed segments, some deleted
// and some revived keys — plenty of dead bytes for a compaction to
// reclaim — plus the expected surviving contents.
func buildDirty(t *testing.T, dir string, reg *metrics.Registry) (*Store, map[string]string) {
	t.Helper()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg, Metrics: reg})
	want := putN(t, s, 40, "c")
	for i := 0; i < 40; i += 4 {
		k := fmt.Sprintf("c-%03d", i)
		if ok, err := s.Delete(k); err != nil || !ok {
			t.Fatalf("Delete(%s): ok=%v err=%v", k, ok, err)
		}
		delete(want, k)
	}
	// Revive a few with new values: compaction must keep the revival,
	// not the original.
	for i := 0; i < 40; i += 8 {
		k := fmt.Sprintf("c-%03d", i)
		v := fmt.Sprintf("revived-%03d", i)
		if err := s.Put(k, "test", v, Meta{}); err != nil {
			t.Fatalf("revive Put(%s): %v", k, err)
		}
		want[k] = v
	}
	if s.Status().Segments < 3 {
		t.Fatalf("dirty store has only %d segments", s.Status().Segments)
	}
	return s, want
}

// TestCompactReclaims runs a full compaction and checks the merged
// layout: two segments (output + active), every surviving key readable,
// deleted keys still gone, dead bytes reclaimed and counted.
func TestCompactReclaims(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	s, want := buildDirty(t, dir, reg)
	before := s.Status()

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Status()
	if after.Segments != 2 {
		t.Fatalf("after compaction: %d segments, want 2 (output + active)", after.Segments)
	}
	if after.Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", after.Compactions)
	}
	if rb := reg.Counter(MetricReclaimed).Value(); rb <= 0 {
		t.Fatalf("reclaimed bytes = %d, want > 0", rb)
	}
	if after.DeadBytes >= before.DeadBytes {
		t.Fatalf("compaction did not shrink dead bytes: %d -> %d", before.DeadBytes, after.DeadBytes)
	}
	checkAll(t, s, want)
	for i := 4; i < 40; i += 8 { // deleted and never revived
		if _, ok, _ := s.Get(fmt.Sprintf("c-%03d", i)); ok {
			t.Fatalf("c-%03d resurrected by compaction", i)
		}
	}
	s.Close()

	// Both reopen paths see the compacted layout identically.
	s2 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	checkAll(t, s2, want)
	s2.Close()
	os.Remove(filepath.Join(dir, SnapshotName))
	s3 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	defer s3.Close()
	checkAll(t, s3, want)
}

// TestCompactIdempotent: a second immediate compaction merges the (one)
// sealed output with nothing new and must not lose anything.
func TestCompactIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, want := buildDirty(t, dir, metrics.New())
	defer s.Close()
	if err := s.Compact(); err != nil {
		t.Fatalf("first Compact: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	checkAll(t, s, want)
}

// TestCompactConcurrentUse compacts while readers and writers run; no
// Get may fail and every key must land.
func TestCompactConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	s, want := buildDirty(t, dir, metrics.New())
	defer s.Close()

	done := make(chan error, 2)
	go func() {
		for i := 0; i < 30; i++ {
			k := fmt.Sprintf("live-%03d", i)
			if err := s.Put(k, "test", k, Meta{}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 200; i++ {
			for k := range want {
				if _, ok, err := s.Get(k); err != nil || !ok {
					done <- fmt.Errorf("Get(%s) during compaction: ok=%v err=%v", k, ok, err)
					return
				}
				break
			}
		}
		done <- nil
	}()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("live-%03d", i)
		want[k] = k
	}
	checkAll(t, s, want)
}

// TestKillMidCompaction aborts a compaction at every durable stage —
// simulating a SIGKILL between two filesystem operations — and checks
// the reopened store: no live record lost, no deleted key resurrected,
// no debris left behind.
func TestKillMidCompaction(t *testing.T) {
	stages := []string{
		compactStageOutputWritten,
		compactStageOutputRenamed,
		compactStageSwapped,
		compactStageMidDelete,
	}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s, want := buildDirty(t, dir, metrics.New())
			s.crashAt = func(at string) bool { return at == stage }
			if err := s.Compact(); !errors.Is(err, errCompactionAborted) {
				t.Fatalf("Compact with crash hook: err=%v, want abort", err)
			}
			// Simulate the kill: release file handles without the
			// orderly Close (which would snapshot and tidy up).
			s.closeSegments()

			s2 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
			defer s2.Close()
			checkAll(t, s2, want)
			for i := 4; i < 40; i += 8 {
				if _, ok, _ := s2.Get(fmt.Sprintf("c-%03d", i)); ok {
					t.Fatalf("c-%03d resurrected after crash at %s", i, stage)
				}
			}
			// The recovered layout must be committed state only: every
			// on-disk segment is in the manifest, no temp files remain.
			tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
			if len(tmps) != 0 {
				t.Fatalf("debris after recovery: %v", tmps)
			}
			m, err := loadManifest(dir)
			if err != nil || m == nil {
				t.Fatalf("manifest after recovery: %v", err)
			}
			files, _ := scanSegmentFiles(dir)
			if len(files) != len(m.Segments) {
				t.Fatalf("disk has %d segments, manifest lists %d", len(files), len(m.Segments))
			}
			// And the store still accepts writes after recovery.
			if err := s2.Put("post-crash", "test", "ok", Meta{}); err != nil {
				t.Fatalf("Put after crash recovery: %v", err)
			}
		})
	}
}

// TestCompactAfterCrashRetries: a crash before the manifest commit
// leaves the old layout; the next compaction must succeed from scratch
// even though the previous output name was burned... it is not — the
// output (id, gen+1) name is derived from the surviving layout, so the
// retry regenerates the same name cleanly after open deleted the
// orphan.
func TestCompactAfterCrashRetries(t *testing.T) {
	dir := t.TempDir()
	s, want := buildDirty(t, dir, metrics.New())
	s.crashAt = func(at string) bool { return at == compactStageOutputRenamed }
	if err := s.Compact(); !errors.Is(err, errCompactionAborted) {
		t.Fatalf("Compact: %v", err)
	}
	s.closeSegments()

	s2 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	defer s2.Close()
	if err := s2.Compact(); err != nil {
		t.Fatalf("retry Compact after crash: %v", err)
	}
	checkAll(t, s2, want)
	if got := s2.Status().Segments; got != 2 {
		t.Fatalf("retried compaction left %d segments, want 2", got)
	}
}
