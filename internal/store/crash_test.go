package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// journalPath returns the active segment of a fresh (never-rolled)
// store — the file that plays the old single-journal role in these
// torn-tail scenarios.
func journalPath(dir string) string { return filepath.Join(dir, segName(1, 1)) }

// fileSize stats the active segment.
func fileSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(journalPath(dir))
	if err != nil {
		t.Fatalf("stat journal: %v", err)
	}
	return fi.Size()
}

// writeThree populates a fresh store with three records and returns the
// segment offsets after each put (i.e. the record boundaries). The
// clean Close leaves an index snapshot; writeThree deletes it, because
// these tests simulate a crash — and a crashed process never wrote a
// snapshot covering the bytes it was torn in the middle of (snapshot
// capture syncs first, so covered bytes are always durable).
func writeThree(t *testing.T, dir string) []int64 {
	t.Helper()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var bounds []int64
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, "test", strings.Repeat(k, 64), Meta{}); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		bounds = append(bounds, fileSize(t, dir))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatalf("remove snapshot: %v", err)
	}
	return bounds
}

// TestTruncatedTailRecovered simulates a crash mid-append: the last
// record is cut short. Reopen must recover the complete records, count
// the corruption, log it, and keep the store writable.
func TestTruncatedTailRecovered(t *testing.T) {
	dir := t.TempDir()
	bounds := writeThree(t, dir)
	if err := os.Truncate(journalPath(dir), bounds[2]-5); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	reg := metrics.New()
	var logged strings.Builder
	s, err := Open(dir, Config{Metrics: reg, Log: func(f string, a ...any) {
		logged.WriteString(strings.TrimSpace(f))
	}})
	if err != nil {
		t.Fatalf("Open after torn write: %v", err)
	}
	defer s.Close()

	if s.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s.Len())
	}
	if c := reg.Counter(MetricCorrupt).Value(); c != 1 {
		t.Fatalf("corrupt counter = %d, want 1", c)
	}
	if !strings.Contains(logged.String(), "corrupt") {
		t.Fatalf("recovery was not logged: %q", logged.String())
	}
	for _, k := range []string{"a", "b"} {
		if _, ok, err := s.Get(k); !ok || err != nil {
			t.Fatalf("Get(%s) after recovery: ok=%v err=%v", k, ok, err)
		}
	}
	if _, ok, _ := s.Get("c"); ok {
		t.Fatalf("torn record c survived recovery")
	}

	// The journal was truncated to the last good boundary, so appends
	// resume cleanly and survive another reopen.
	if err := s.Put("d", "test", "recovered-append", Meta{}); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	s.Close()
	s2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("after recovery+append, reopened Len = %d, want 3", s2.Len())
	}
}

// TestTruncateAtRecordBoundary cuts the journal exactly between two
// records: every remaining record is complete, so recovery must be
// silent — no corruption counted.
func TestTruncateAtRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	bounds := writeThree(t, dir)
	if err := os.Truncate(journalPath(dir), bounds[1]); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	reg := metrics.New()
	s, err := Open(dir, Config{Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s.Len())
	}
	if c := reg.Counter(MetricCorrupt).Value(); c != 0 {
		t.Fatalf("boundary truncation counted %d corrupt records, want 0", c)
	}
}

// TestCorruptChecksumTail flips a payload byte in the final record; the
// CRC must reject it and recovery keeps the prefix.
func TestCorruptChecksumTail(t *testing.T) {
	dir := t.TempDir()
	bounds := writeThree(t, dir)
	f, err := os.OpenFile(journalPath(dir), os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	// Flip a byte well inside the last record's payload.
	if _, err := f.WriteAt([]byte{0xff}, bounds[1]+journalHeaderLen+8); err != nil {
		t.Fatalf("corrupt byte: %v", err)
	}
	f.Close()

	reg := metrics.New()
	s, err := Open(dir, Config{Metrics: reg})
	if err != nil {
		t.Fatalf("Open after checksum damage: %v", err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("recovered %d records, want 2", s.Len())
	}
	if c := reg.Counter(MetricCorrupt).Value(); c != 1 {
		t.Fatalf("corrupt counter = %d, want 1", c)
	}
	if fileSize(t, dir) != bounds[1] {
		t.Fatalf("journal not truncated to last good boundary: %d vs %d", fileSize(t, dir), bounds[1])
	}
}

// TestEmptyAndGarbageJournals: an empty journal opens clean; a journal
// that is pure garbage recovers to zero records without panicking.
func TestEmptyAndGarbageJournals(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("empty journal has %d records", s.Len())
	}
	s.Close()

	garbage := t.TempDir()
	if err := os.WriteFile(journalPath(garbage), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	reg := metrics.New()
	s2, err := Open(garbage, Config{Metrics: reg})
	if err != nil {
		t.Fatalf("Open garbage: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 0 || reg.Counter(MetricCorrupt).Value() != 1 {
		t.Fatalf("garbage journal: len=%d corrupt=%d, want 0 and 1",
			s2.Len(), reg.Counter(MetricCorrupt).Value())
	}
	if err := s2.Put("fresh", "test", 1, Meta{}); err != nil {
		t.Fatalf("Put after garbage recovery: %v", err)
	}
}
