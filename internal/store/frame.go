package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Record framing shared by the store's append-only files — the result
// journal (magic "VMR1") and the control-plane WAL (magic "VMC1") —
// little-endian:
//
//	magic   [4]byte  file-specific
//	length  uint32   payload byte count
//	crc     uint32   IEEE CRC-32 of the payload
//	payload []byte
//
// The per-record checksum is what makes crash recovery possible: a torn
// write at the tail fails either the length read or the CRC and is
// truncated away on open.

const frameHeaderLen = 12

// maxFrameBytes bounds a single record so a corrupt length field cannot
// drive a multi-gigabyte allocation during replay.
const maxFrameBytes = 1 << 30

// encodeFrame renders one framed record.
func encodeFrame(magic [4]byte, payload []byte) ([]byte, error) {
	if len(payload) > maxFrameBytes {
		return nil, fmt.Errorf("store: %d-byte record exceeds the %d-byte frame limit", len(payload), maxFrameBytes)
	}
	rec := make([]byte, frameHeaderLen+len(payload))
	copy(rec, magic[:])
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(payload))
	copy(rec[frameHeaderLen:], payload)
	return rec, nil
}

// scanFrames replays framed records from the start of f, calling fn
// with each complete, checksummed payload and its file offset. A
// non-nil error from fn marks that record as the start of the corrupt
// tail (its message is the reason). Returns the offset just past the
// last good record and the corruption reason — empty when the file ends
// cleanly. Deciding whether to truncate is the caller's business; the
// rationale for treating the first bad record as tail damage is that
// the framed files are append-only, so mid-file damage cannot occur
// without tail damage first.
func scanFrames(f *os.File, magic [4]byte, fn func(off int64, payload []byte) error) (int64, string, error) {
	return scanFramesFrom(f, magic, 0, fn)
}

// scanFramesFrom is scanFrames starting at byte offset from — the
// snapshot loader uses it to replay only the tail of a segment past the
// snapshot's watermark.
func scanFramesFrom(f *os.File, magic [4]byte, from int64, fn func(off int64, payload []byte) error) (int64, string, error) {
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return from, "", fmt.Errorf("store: seek: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	off := from
	for {
		var hdr [frameHeaderLen]byte
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF && n == 0 {
			return off, "", nil // clean end of file
		}
		reason := ""
		var payload []byte
		switch {
		case err != nil:
			reason = "truncated record header"
		case !bytes.Equal(hdr[:4], magic[:]):
			reason = "bad record magic"
		case binary.LittleEndian.Uint32(hdr[4:]) > maxFrameBytes:
			reason = "implausible record length"
		}
		if reason == "" {
			payload = make([]byte, binary.LittleEndian.Uint32(hdr[4:]))
			if _, err := io.ReadFull(r, payload); err != nil {
				reason = "truncated record payload"
			} else if binary.LittleEndian.Uint32(hdr[8:]) != crc32.ChecksumIEEE(payload) {
				reason = "record checksum mismatch"
			}
		}
		if reason == "" {
			if err := fn(off, payload); err != nil {
				reason = err.Error()
			} else {
				off += int64(frameHeaderLen + len(payload))
				continue
			}
		}
		return off, reason, nil
	}
}
