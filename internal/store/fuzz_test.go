package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay writes arbitrary bytes as a journal file and opens
// the store over it: replay must never panic, must recover to some
// clean prefix (counting the corruption), and must leave the store
// usable — a Put and a Get after recovery behave normally. This is the
// torn/hostile-journal contract the server's crash recovery depends on.
func FuzzJournalReplay(f *testing.F) {
	good, err := encodeRecord(&Entry{Key: "k1", Kind: "scenario", Value: json.RawMessage(`[1,2]`)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-3])                             // torn tail
	f.Add(append(append([]byte{}, good...), good[:7]...)) // one good, one torn
	f.Add([]byte("VMR1garbage after the magic bytes"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("hostile journal made Open fail: %v", err)
		}
		defer s.Close()
		if err := s.Put("fuzz-probe", "scenario", []int{1}, Meta{}); err != nil {
			t.Fatalf("store unusable after recovery: %v", err)
		}
		if _, ok, err := s.Get("fuzz-probe"); !ok || err != nil {
			t.Fatalf("probe entry unreadable after recovery: ok=%v err=%v", ok, err)
		}
	})
}

// FuzzWALReplay does the same for the control-plane WAL: arbitrary
// bytes must replay without panicking, yield only complete checksummed
// records, and leave the log appendable.
func FuzzWALReplay(f *testing.F) {
	frame := func(r WALRecord) []byte {
		payload, _ := json.Marshal(&r)
		b, err := encodeFrame(walMagic, payload)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	good := frame(WALRecord{Kind: RecSweepOpened, Sweep: "s000001", Grid: json.RawMessage(`{"n":[30]}`)})
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add(append(append([]byte{}, good...), []byte("VMC1")...))
	f.Add([]byte("VMC1 but nothing that parses"))
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, WALName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := OpenWAL(dir, WALConfig{})
		if err != nil {
			t.Fatalf("hostile WAL made OpenWAL fail: %v", err)
		}
		defer w.Close()
		for i, r := range recs {
			if r.Kind == "" {
				t.Fatalf("replayed record %d has no kind: %+v", i, r)
			}
		}
		if err := w.Append(WALRecord{Kind: RecUnitEnqueued, Key: "probe"}); err != nil {
			t.Fatalf("WAL unappendable after recovery: %v", err)
		}
	})
}

// FuzzDecodeRecord feeds arbitrary bytes to the single-record decoder
// used by in-place Get reads: errors, never panics, and anything it
// accepts round-trips through encodeRecord.
func FuzzDecodeRecord(f *testing.F) {
	good, err := encodeRecord(&Entry{Key: "k", Value: json.RawMessage(`{"a":1}`)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:5])
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := decodeRecord(b)
		if err != nil {
			return
		}
		re, err := encodeRecord(&e)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if _, err := decodeRecord(re); err != nil {
			t.Fatalf("accepted record is not round-trip stable: %v", err)
		}
	})
}
