package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay writes arbitrary bytes as a journal file and opens
// the store over it: replay must never panic, must recover to some
// clean prefix (counting the corruption), and must leave the store
// usable — a Put and a Get after recovery behave normally. This is the
// torn/hostile-journal contract the server's crash recovery depends on.
func FuzzJournalReplay(f *testing.F) {
	good, err := encodeRecord(&Entry{Key: "k1", Kind: "scenario", Value: json.RawMessage(`[1,2]`)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-3])                             // torn tail
	f.Add(append(append([]byte{}, good...), good[:7]...)) // one good, one torn
	f.Add([]byte("VMR1garbage after the magic bytes"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("hostile journal made Open fail: %v", err)
		}
		defer s.Close()
		if err := s.Put("fuzz-probe", "scenario", []int{1}, Meta{}); err != nil {
			t.Fatalf("store unusable after recovery: %v", err)
		}
		if _, ok, err := s.Get("fuzz-probe"); !ok || err != nil {
			t.Fatalf("probe entry unreadable after recovery: ok=%v err=%v", ok, err)
		}
	})
}

// FuzzWALReplay does the same for the control-plane WAL: arbitrary
// bytes must replay without panicking, yield only complete checksummed
// records, and leave the log appendable.
func FuzzWALReplay(f *testing.F) {
	frame := func(r WALRecord) []byte {
		payload, _ := json.Marshal(&r)
		b, err := encodeFrame(walMagic, payload)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	good := frame(WALRecord{Kind: RecSweepOpened, Sweep: "s000001", Grid: json.RawMessage(`{"n":[30]}`)})
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-2])
	f.Add(append(append([]byte{}, good...), []byte("VMC1")...))
	f.Add([]byte("VMC1 but nothing that parses"))
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, WALName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := OpenWAL(dir, WALConfig{})
		if err != nil {
			t.Fatalf("hostile WAL made OpenWAL fail: %v", err)
		}
		defer w.Close()
		for i, r := range recs {
			if r.Kind == "" {
				t.Fatalf("replayed record %d has no kind: %+v", i, r)
			}
		}
		if err := w.Append(WALRecord{Kind: RecUnitEnqueued, Key: "probe"}); err != nil {
			t.Fatalf("WAL unappendable after recovery: %v", err)
		}
	})
}

// FuzzDecodeRecord feeds arbitrary bytes to the single-record decoder
// used by in-place Get reads: errors, never panics, and anything it
// accepts round-trips through encodeRecord.
func FuzzDecodeRecord(f *testing.F) {
	good, err := encodeRecord(&Entry{Key: "k", Value: json.RawMessage(`{"a":1}`)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:5])
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := decodeRecord(b)
		if err != nil {
			return
		}
		re, err := encodeRecord(&e)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if _, err := decodeRecord(re); err != nil {
			t.Fatalf("accepted record is not round-trip stable: %v", err)
		}
	})
}

// FuzzManifestDecode feeds arbitrary bytes to the manifest decoder:
// errors, never panics, and anything it accepts is internally
// consistent and re-encodes stably.
func FuzzManifestDecode(f *testing.F) {
	good, err := encodeManifest(&manifest{Version: manifestVersion, Generation: 3, NextID: 4,
		Segments: []manifestSegment{{ID: 1, Gen: 2}, {ID: 3, Gen: 1}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)-4])
	f.Add([]byte("VMM1 but nothing that parses"))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeManifest(b)
		if err != nil {
			return
		}
		if len(m.Segments) == 0 {
			t.Fatal("decoder accepted a manifest with no segments")
		}
		re, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		if _, err := decodeManifest(re); err != nil {
			t.Fatalf("accepted manifest is not round-trip stable: %v", err)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the index-snapshot
// decoder: errors, never panics, and every accepted ref stays inside
// its segment's covered range (the invariant reopen relies on instead
// of re-checking each record).
func FuzzSnapshotDecode(f *testing.F) {
	good, err := encodeSnapshot(&snapshot{
		generation: 2, unixTime: 1700000000,
		segs: []snapSegment{{id: 1, gen: 1, covered: 300, liveBytes: 300, liveRecords: 2}},
		keys: []snapKey{{key: "abc", segIdx: 0, off: 0, length: 150}, {key: "def", segIdx: 0, off: 150, length: 150}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)/2])
	f.Add([]byte("VMS1 hostile"))
	f.Fuzz(func(t *testing.T, b []byte) {
		sn, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		for i, k := range sn.keys {
			if int(k.segIdx) >= len(sn.segs) {
				t.Fatalf("accepted key %d references missing segment %d", i, k.segIdx)
			}
			if k.off < 0 || k.length < frameHeaderLen || k.off+k.length > sn.segs[k.segIdx].covered {
				t.Fatalf("accepted key %d escapes coverage: %+v", i, k)
			}
		}
	})
}

// FuzzManifestOpen drops arbitrary bytes in as MANIFEST.vmat over a
// real segment layout: Open must never panic, and must either succeed
// (store fully usable) or fail cleanly in a way that deleting the
// manifest recovers from.
func FuzzManifestOpen(f *testing.F) {
	goodManifest, err := encodeManifest(&manifest{Version: manifestVersion, Generation: 1, NextID: 2,
		Segments: []manifestSegment{{ID: 1, Gen: 1}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(goodManifest)
	f.Add(goodManifest[:len(goodManifest)-3])
	f.Add([]byte(`VMM1{"version":1,"next_id":9,"segments":[{"id":7,"gen":1}]}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		seed := mustOpen(t, dir, Config{})
		if err := seed.Put("seeded", "test", "value", Meta{}); err != nil {
			t.Fatal(err)
		}
		seed.Close()
		if err := os.WriteFile(filepath.Join(dir, ManifestName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		// A mutated manifest may claim coverage the layout can't back;
		// the stale snapshot must not be allowed to mask that.
		os.Remove(filepath.Join(dir, SnapshotName))
		s, err := Open(dir, Config{})
		if err != nil {
			// Clean failure (e.g. a valid manifest naming segments that
			// do not exist). Removing the manifest must recover.
			os.Remove(filepath.Join(dir, ManifestName))
			s2, err := Open(dir, Config{})
			if err != nil {
				t.Fatalf("Open still fails after manifest removal: %v", err)
			}
			s2.Close()
			return
		}
		defer s.Close()
		if err := s.Put("fuzz-probe", "test", 1, Meta{}); err != nil {
			t.Fatalf("store unusable after manifest recovery: %v", err)
		}
		if _, ok, err := s.Get("fuzz-probe"); !ok || err != nil {
			t.Fatalf("probe unreadable: ok=%v err=%v", ok, err)
		}
	})
}
