package store

import "sync"

// The key→record index, sharded so concurrent readers (a sweep
// re-reading its cells while the cluster coordinator writes back remote
// completions) never contend on one lock. Keys are content addresses —
// hex SHA-256, uniformly distributed — so a cheap FNV-1a over the first
// bytes spreads them evenly; the shard count is a power of two to make
// the modulo a mask.
const indexShards = 64

// recordRef locates one live record: which open segment file (by
// runtime sequence number, not segment id — compaction replaces files
// while ids persist), the byte offset of its frame, and the frame
// length.
type recordRef struct {
	seg    int64 // segment runtime sequence (see segment.seq)
	off    int64
	length int64
}

type indexShard struct {
	mu sync.RWMutex
	m  map[string]recordRef
}

type shardedIndex struct {
	shards [indexShards]indexShard
}

func newShardedIndex() *shardedIndex {
	x := &shardedIndex{}
	for i := range x.shards {
		x.shards[i].m = make(map[string]recordRef)
	}
	return x
}

// shardFor hashes key to its shard (FNV-1a, masked).
func (x *shardedIndex) shardFor(key string) *indexShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &x.shards[h&(indexShards-1)]
}

func (x *shardedIndex) get(key string) (recordRef, bool) {
	sh := x.shardFor(key)
	sh.mu.RLock()
	ref, ok := sh.m[key]
	sh.mu.RUnlock()
	return ref, ok
}

func (x *shardedIndex) has(key string) bool {
	_, ok := x.get(key)
	return ok
}

// putIfAbsent inserts key→ref unless key is already live, returning
// whether the insert happened — the index-level half of the store's
// first-write-wins contract.
func (x *shardedIndex) putIfAbsent(key string, ref recordRef) bool {
	sh := x.shardFor(key)
	sh.mu.Lock()
	if _, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.m[key] = ref
	sh.mu.Unlock()
	return true
}

// delete removes key, returning its ref and whether it was present.
func (x *shardedIndex) delete(key string) (recordRef, bool) {
	sh := x.shardFor(key)
	sh.mu.Lock()
	ref, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	return ref, ok
}

// replace updates key→ref only if the current ref's segment is accepted
// by old (a predicate over the current segment seq). The compactor uses
// it to repoint entries from compacted segments to the merged output
// while leaving keys that moved (deleted or re-put into the active
// segment mid-compaction) alone. Returns whether the swap happened.
func (x *shardedIndex) replace(key string, old func(int64) bool, ref recordRef) bool {
	sh := x.shardFor(key)
	sh.mu.Lock()
	cur, ok := sh.m[key]
	if !ok || !old(cur.seg) {
		sh.mu.Unlock()
		return false
	}
	sh.m[key] = ref
	sh.mu.Unlock()
	return true
}

func (x *shardedIndex) len() int {
	n := 0
	for i := range x.shards {
		x.shards[i].mu.RLock()
		n += len(x.shards[i].m)
		x.shards[i].mu.RUnlock()
	}
	return n
}

// walk visits every (key, ref) pair, one shard at a time under that
// shard's read lock. fn must not call back into the index.
func (x *shardedIndex) walk(fn func(key string, ref recordRef)) {
	for i := range x.shards {
		x.shards[i].mu.RLock()
		for k, ref := range x.shards[i].m {
			fn(k, ref)
		}
		x.shards[i].mu.RUnlock()
	}
}

// insertUnlocked assigns key→ref without taking the shard lock or
// checking for an existing entry. Only the Open-time snapshot loader
// may call it: the store is not yet visible to any other goroutine, and
// snapshot keys are unique by construction (they were walked out of a
// map), so neither the lock nor the first-write-wins probe buys
// anything — and at a million keys they are most of the reopen cost.
func (x *shardedIndex) insertUnlocked(key string, ref recordRef) {
	x.shardFor(key).m[key] = ref
}

// preallocate sizes every shard's map for about n total keys — the
// snapshot loader calls it before bulk insertion so a million-entry
// reopen does not rehash 64 maps a dozen times each.
func (x *shardedIndex) preallocate(n int) {
	per := n/indexShards + 1
	for i := range x.shards {
		x.shards[i].mu.Lock()
		if len(x.shards[i].m) == 0 {
			x.shards[i].m = make(map[string]recordRef, per)
		}
		x.shards[i].mu.Unlock()
	}
}
