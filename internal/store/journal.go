package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// JournalName is the append-only record file inside the store
// directory. Exported so operators (and tests) can find it.
const JournalName = "journal.vmat"

// Journal record layout, little-endian:
//
//	magic   [4]byte  "VMR1"
//	length  uint32   payload byte count
//	crc     uint32   IEEE CRC-32 of the payload
//	payload []byte   JSON-encoded Entry
//
// The per-record checksum is what makes crash recovery possible: a torn
// write at the tail fails either the length read or the CRC and is
// truncated away on Open.
var journalMagic = [4]byte{'V', 'M', 'R', '1'}

const journalHeaderLen = 12

// maxRecordBytes bounds a single record so a corrupt length field
// cannot drive a multi-gigabyte allocation during replay.
const maxRecordBytes = 1 << 30

// encodeRecord renders one entry as a framed journal record.
func encodeRecord(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: marshal record for %s: %w", e.Key, err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("store: record for %s is %d bytes, exceeding the %d-byte limit", e.Key, len(payload), maxRecordBytes)
	}
	rec := make([]byte, journalHeaderLen+len(payload))
	copy(rec, journalMagic[:])
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(payload))
	copy(rec[journalHeaderLen:], payload)
	return rec, nil
}

// decodeRecord parses a framed record read back from disk.
func decodeRecord(rec []byte) (Entry, error) {
	var e Entry
	if len(rec) < journalHeaderLen || !bytes.Equal(rec[:4], journalMagic[:]) {
		return e, fmt.Errorf("bad record header")
	}
	payload := rec[journalHeaderLen:]
	if int(binary.LittleEndian.Uint32(rec[4:])) != len(payload) {
		return e, fmt.Errorf("record length mismatch")
	}
	if binary.LittleEndian.Uint32(rec[8:]) != crc32.ChecksumIEEE(payload) {
		return e, fmt.Errorf("record checksum mismatch")
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, fmt.Errorf("decode record: %w", err)
	}
	return e, nil
}

// replay scans the journal from the start, indexing every complete,
// checksummed record. The first incomplete or corrupt record marks the
// recovery point: everything from there on is the debris of a torn
// write (the journal is append-only, so mid-file damage cannot occur
// without tail damage first), and is logged, counted, and truncated so
// subsequent appends start from a clean boundary. Duplicate keys keep
// the first record, matching Put's first-write-wins idempotence.
func (s *Store) replay() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek journal: %w", err)
	}
	r := bufio.NewReaderSize(s.f, 1<<20)
	var off int64
	for {
		var hdr [journalHeaderLen]byte
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF && n == 0 {
			break // clean end of journal
		}
		reason := ""
		var payload []byte
		switch {
		case err != nil:
			reason = "truncated record header"
		case !bytes.Equal(hdr[:4], journalMagic[:]):
			reason = "bad record magic"
		case binary.LittleEndian.Uint32(hdr[4:]) > maxRecordBytes:
			reason = "implausible record length"
		}
		if reason == "" {
			payload = make([]byte, binary.LittleEndian.Uint32(hdr[4:]))
			if _, err := io.ReadFull(r, payload); err != nil {
				reason = "truncated record payload"
			} else if binary.LittleEndian.Uint32(hdr[8:]) != crc32.ChecksumIEEE(payload) {
				reason = "record checksum mismatch"
			}
		}
		if reason == "" {
			var e Entry
			if err := json.Unmarshal(payload, &e); err != nil || e.Key == "" {
				reason = "undecodable record payload"
			} else {
				length := int64(journalHeaderLen + len(payload))
				if _, dup := s.index[e.Key]; !dup {
					s.index[e.Key] = recordRef{off: off, length: length}
				}
				off += length
				continue
			}
		}
		// Corrupt tail: recover to the last good record.
		s.corrupt.Inc()
		s.log("store: journal corrupt at offset %d (%s); recovering %d complete records and truncating", off, reason, len(s.index))
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate corrupt journal tail: %w", err)
		}
		break
	}
	s.size = off
	return nil
}
