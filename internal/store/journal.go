package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// JournalName is the legacy single-file journal from before the
// segmented layout. A data directory that still has one (and no
// manifest) is migrated on first open: the file is renamed into
// segment 1 and a manifest is committed around it, so old -data-dir
// trees keep serving their results unchanged. Exported so operators
// (and tests) can find it.
const JournalName = "journal.vmat"

// journalMagic marks result-journal records in the shared framing (see
// frame.go for the layout). Segment files use the same record format as
// the legacy journal — that equivalence is what makes migration a pure
// rename.
var journalMagic = [4]byte{'V', 'M', 'R', '1'}

// journalHeaderLen aliases the shared frame header size; the record
// layout itself lives in frame.go.
const journalHeaderLen = frameHeaderLen

// encodeRecord renders one entry as a framed journal record.
func encodeRecord(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: marshal record for %s: %w", e.Key, err)
	}
	rec, err := encodeFrame(journalMagic, payload)
	if err != nil {
		return nil, fmt.Errorf("store: record for %s: %w", e.Key, err)
	}
	return rec, nil
}

// decodeRecord parses a framed record read back from disk.
func decodeRecord(rec []byte) (Entry, error) {
	var e Entry
	if len(rec) < journalHeaderLen || !bytes.Equal(rec[:4], journalMagic[:]) {
		return e, fmt.Errorf("bad record header")
	}
	payload := rec[journalHeaderLen:]
	if int(binary.LittleEndian.Uint32(rec[4:])) != len(payload) {
		return e, fmt.Errorf("record length mismatch")
	}
	if binary.LittleEndian.Uint32(rec[8:]) != crc32.ChecksumIEEE(payload) {
		return e, fmt.Errorf("record checksum mismatch")
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, fmt.Errorf("decode record: %w", err)
	}
	return e, nil
}
