package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// JournalName is the append-only record file inside the store
// directory. Exported so operators (and tests) can find it.
const JournalName = "journal.vmat"

// journalMagic marks result-journal records in the shared framing (see
// frame.go for the layout).
var journalMagic = [4]byte{'V', 'M', 'R', '1'}

// journalHeaderLen aliases the shared frame header size; the record
// layout itself lives in frame.go.
const journalHeaderLen = frameHeaderLen

// encodeRecord renders one entry as a framed journal record.
func encodeRecord(e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("store: marshal record for %s: %w", e.Key, err)
	}
	rec, err := encodeFrame(journalMagic, payload)
	if err != nil {
		return nil, fmt.Errorf("store: record for %s: %w", e.Key, err)
	}
	return rec, nil
}

// decodeRecord parses a framed record read back from disk.
func decodeRecord(rec []byte) (Entry, error) {
	var e Entry
	if len(rec) < journalHeaderLen || !bytes.Equal(rec[:4], journalMagic[:]) {
		return e, fmt.Errorf("bad record header")
	}
	payload := rec[journalHeaderLen:]
	if int(binary.LittleEndian.Uint32(rec[4:])) != len(payload) {
		return e, fmt.Errorf("record length mismatch")
	}
	if binary.LittleEndian.Uint32(rec[8:]) != crc32.ChecksumIEEE(payload) {
		return e, fmt.Errorf("record checksum mismatch")
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, fmt.Errorf("decode record: %w", err)
	}
	return e, nil
}

// replay scans the journal from the start, indexing every complete,
// checksummed record. The first incomplete or corrupt record marks the
// recovery point: everything from there on is the debris of a torn
// write, and is logged, counted, and truncated so subsequent appends
// start from a clean boundary. Duplicate keys keep the first record,
// matching Put's first-write-wins idempotence.
func (s *Store) replay() error {
	off, reason, err := scanFrames(s.f, journalMagic, func(off int64, payload []byte) error {
		var e Entry
		if jerr := json.Unmarshal(payload, &e); jerr != nil || e.Key == "" {
			return errors.New("undecodable record payload")
		}
		if _, dup := s.index[e.Key]; !dup {
			s.index[e.Key] = recordRef{off: off, length: int64(journalHeaderLen + len(payload))}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: replay journal: %w", err)
	}
	if reason != "" {
		// Corrupt tail: recover to the last good record.
		s.corrupt.Inc()
		s.log("store: journal corrupt at offset %d (%s); recovering %d complete records and truncating", off, reason, len(s.index))
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate corrupt journal tail: %w", err)
		}
	}
	s.size = off
	return nil
}
