package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/experiments"
)

// KindScenario is the record kind for service scenario results.
const KindScenario = "scenario"

// KeyJSON returns the content address for a (kind, spec) pair: the
// SHA-256 of the kind and the spec's canonical JSON encoding.
// encoding/json renders struct fields in declaration order and map keys
// sorted, so equal specs always hash equal. Callers must strip
// execution-only knobs (worker counts, contexts) from spec before
// keying — they do not affect results and must not affect the address.
func KeyJSON(kind string, spec any) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("store: marshal key spec: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ScenarioKey returns the content address of a scenario spec. The spec
// is normalized first (so defaulted and explicit encodings of the same
// scenario collide, as they must) and its execution-only fields are
// zeroed: Workers is invisible in the rows by the trial-runner's
// determinism contract, and Context/Trace/Metrics never reach the JSON
// encoding at all. The faults, ARQ, and max-slots fields all remain
// part of the identity — a degraded run is not the same result as a
// clean one.
func ScenarioKey(cfg experiments.ScenarioConfig) (string, error) {
	cfg.Normalize()
	cfg.Workers = 0
	cfg.Context = nil
	cfg.Trace = nil
	cfg.Metrics = nil
	return KeyJSON(KindScenario, cfg)
}

// GetScenario looks up the stored rows for a scenario spec. A miss
// returns ok=false; decode failures surface as errors.
func (s *Store) GetScenario(cfg experiments.ScenarioConfig) ([]experiments.ScenarioRow, bool, error) {
	key, err := ScenarioKey(cfg)
	if err != nil {
		return nil, false, err
	}
	e, ok, err := s.Get(key)
	if err != nil || !ok {
		return nil, false, err
	}
	var rows []experiments.ScenarioRow
	if err := json.Unmarshal(e.Value, &rows); err != nil {
		return nil, false, fmt.Errorf("store: decode scenario rows for %s: %w", key, err)
	}
	return rows, true, nil
}

// PutScenarioRaw writes back already-encoded scenario rows under a
// known content address — the remote-result path: the cluster
// coordinator verified the bytes (CRC32 plus key echo) against the
// unit's spec and stores exactly what it verified, with no re-marshal
// in between. Idempotent like Put: first write wins, so a reassigned
// unit completing twice (or a concurrent local execution of the same
// spec) is a no-op.
func (s *Store) PutScenarioRaw(key string, rows json.RawMessage, meta Meta) error {
	if key == "" {
		return fmt.Errorf("store: empty key for raw scenario write-back")
	}
	if s.Has(key) {
		return nil
	}
	return s.Put(key, KindScenario, rows, meta)
}

// PutScenario stores a scenario's rows under its content address.
// Idempotent like Put; the marshal is skipped when the key is already
// present.
func (s *Store) PutScenario(cfg experiments.ScenarioConfig, rows []experiments.ScenarioRow, meta Meta) error {
	key, err := ScenarioKey(cfg)
	if err != nil {
		return err
	}
	if s.Has(key) {
		return nil
	}
	return s.Put(key, KindScenario, rows, meta)
}
