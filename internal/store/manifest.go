package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// The manifest is the authoritative description of the segment layout:
// which segment files exist, in what replay order, and what the next
// segment id is. It is rewritten — never appended — through a temp file
// and an atomic rename on every structural change (roll, compaction,
// migration), so a crash leaves either the old layout or the new one,
// and any segment file the surviving manifest does not list is provably
// uncommitted debris (a half-finished compaction output or a rolled
// file that never hosted a record) and is deleted on open.

// ManifestName is the segment-layout manifest inside the store
// directory. Exported so operators (and tests) can find it.
const ManifestName = "MANIFEST.vmat"

// manifestMagic frames the manifest payload (same framing as journal
// records, see frame.go).
var manifestMagic = [4]byte{'V', 'M', 'M', '1'}

// manifestVersion is bumped when the layout encoding changes.
const manifestVersion = 1

// manifestSegment is one segment in replay order.
type manifestSegment struct {
	ID  int64 `json:"id"`
	Gen int64 `json:"gen"`
}

// manifest is the decoded layout. Segments are in replay order; the
// last entry is the active (appendable) segment.
type manifest struct {
	Version    int               `json:"version"`
	Generation int64             `json:"generation"`
	NextID     int64             `json:"next_id"`
	Segments   []manifestSegment `json:"segments"`
}

// encodeManifest renders the manifest as one framed record.
func encodeManifest(m *manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("store: marshal manifest: %w", err)
	}
	return encodeFrame(manifestMagic, payload)
}

// decodeManifest parses and validates manifest bytes. Every failure is
// an error, never a panic — the fuzz tests hold it to that.
func decodeManifest(b []byte) (*manifest, error) {
	if len(b) < frameHeaderLen || !bytes.Equal(b[:4], manifestMagic[:]) {
		return nil, fmt.Errorf("bad manifest header")
	}
	payload := b[frameHeaderLen:]
	if int64(binary.LittleEndian.Uint32(b[4:])) != int64(len(payload)) {
		return nil, fmt.Errorf("manifest length mismatch")
	}
	if binary.LittleEndian.Uint32(b[8:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("manifest checksum mismatch")
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("decode manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("unsupported manifest version %d", m.Version)
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("manifest lists no segments")
	}
	seen := map[int64]bool{}
	maxID := int64(0)
	for _, ms := range m.Segments {
		if ms.ID < 1 || ms.Gen < 1 {
			return nil, fmt.Errorf("manifest segment (%d,%d) out of range", ms.ID, ms.Gen)
		}
		if seen[ms.ID] {
			return nil, fmt.Errorf("manifest lists segment id %d twice", ms.ID)
		}
		seen[ms.ID] = true
		if ms.ID > maxID {
			maxID = ms.ID
		}
	}
	if m.NextID <= maxID {
		return nil, fmt.Errorf("manifest next_id %d not past max segment id %d", m.NextID, maxID)
	}
	return &m, nil
}

// commitManifest atomically replaces dir's manifest: write a temp file,
// fsync it, rename over the live name, fsync the directory.
func commitManifest(dir string, m *manifest) error {
	rec, err := encodeManifest(m)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create manifest temp: %w", err)
	}
	if _, err := f.Write(rec); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close manifest temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: swap manifest: %w", err)
	}
	return syncDir(dir)
}

// loadManifest reads dir's manifest. A missing file returns (nil, nil);
// unreadable or invalid bytes return an error.
func loadManifest(dir string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	return decodeManifest(b)
}

// scanSegmentFiles lists the (id, gen) pairs of every well-named
// segment file in dir, sorted by (id, gen).
func scanSegmentFiles(dir string) ([]manifestSegment, error) {
	names, err := filepath.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		return nil, fmt.Errorf("store: scan segments: %w", err)
	}
	var segs []manifestSegment
	for _, p := range names {
		if id, gen, ok := parseSegName(filepath.Base(p)); ok {
			segs = append(segs, manifestSegment{ID: id, Gen: gen})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].ID != segs[j].ID {
			return segs[i].ID < segs[j].ID
		}
		return segs[i].Gen < segs[j].Gen
	})
	return segs, nil
}

// bootstrapManifest reconstructs a manifest from the segment files on
// disk: sort by id, and where an id has several generations keep the
// highest (it is the compacted replacement; see segment.go on why
// (id, gen) order is always a correct replay order). Used when no
// manifest exists (legacy migration mid-crash, hand-assembled dirs) and
// as the recovery path for a corrupt manifest. The dropped lower
// generations are returned so the caller can delete them.
func bootstrapManifest(files []manifestSegment) (*manifest, []manifestSegment) {
	var keep []manifestSegment
	var drop []manifestSegment
	for _, ms := range files { // sorted by (id, gen): last of each id wins
		if len(keep) > 0 && keep[len(keep)-1].ID == ms.ID {
			drop = append(drop, keep[len(keep)-1])
			keep[len(keep)-1] = ms
			continue
		}
		keep = append(keep, ms)
	}
	nextID := int64(1)
	if len(keep) > 0 {
		nextID = keep[len(keep)-1].ID + 1
	}
	return &manifest{Version: manifestVersion, Generation: 1, NextID: nextID, Segments: keep}, drop
}
