package store

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

// TestPutScenarioRaw covers the cluster write-back path: verified raw
// bytes stored under a precomputed content address, first write wins.
func TestPutScenarioRaw(t *testing.T) {
	s, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := experiments.ScenarioConfig{N: 10, Trials: 2, Seed: 5}
	spec.Normalize()
	key, err := ScenarioKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows := []experiments.ScenarioRow{}
	raw, _ := json.Marshal(rows)

	if err := s.PutScenarioRaw("", raw, Meta{}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.PutScenarioRaw(key, raw, Meta{Version: "remote"}); err != nil {
		t.Fatal(err)
	}
	e, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("get after raw put = (ok=%v, err=%v)", ok, err)
	}
	if !bytes.Equal(e.Value, raw) {
		t.Fatalf("stored bytes %q differ from written bytes %q", e.Value, raw)
	}
	if e.Kind != KindScenario || e.Meta.Version != "remote" {
		t.Fatalf("entry metadata = %+v", e)
	}

	// First write wins: a duplicate completion (reassigned unit finishing
	// twice) must not overwrite the stored result.
	if err := s.PutScenarioRaw(key, json.RawMessage(`[{"bogus":true}]`), Meta{}); err != nil {
		t.Fatal(err)
	}
	e2, _, _ := s.Get(key)
	if !bytes.Equal(e2.Value, raw) {
		t.Fatal("duplicate raw put overwrote the first result")
	}

	// The typed read path decodes what the raw path wrote.
	got, ok, err := s.GetScenario(spec)
	if err != nil || !ok {
		t.Fatalf("GetScenario after raw put = (ok=%v, err=%v)", ok, err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
}
