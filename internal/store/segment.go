package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
)

// Segment files carry the result journal, split at a size threshold so
// memory, replay, and compaction all stop scaling with everything ever
// written. A store directory holds:
//
//	seg-<id>-<gen>.vmat   journal segments (CRC-framed records, frame.go)
//	MANIFEST.vmat         replay order + next id (manifest.go)
//	index.snap            index snapshot for fast reopen (snapshot.go)
//	control.wal           control-plane WAL (wal.go, unchanged)
//
// The last manifest entry is the active segment — the only file ever
// appended to. Everything before it is sealed and immutable, which is
// what lets the compactor read cold segments without locks and what
// makes an index snapshot's coverage of them permanent.
//
// Naming: <id> is the segment's logical position (ids strictly increase
// with creation order), <gen> its rewrite generation. A compaction
// merging the sealed prefix writes its output as the first input's id
// with the generation bumped, so sorting by (id, gen) always yields a
// correct replay order even if the manifest is lost — lower generations
// of an id and any surviving later inputs replay as harmless duplicates
// of the merged output (first-write-wins absorbs them).

// segPattern matches segment files; see segName.
const segPattern = "seg-*.vmat"

// segName renders a segment file name from its id and generation.
func segName(id, gen int64) string {
	return fmt.Sprintf("seg-%08d-%04d.vmat", id, gen)
}

// parseSegName extracts (id, gen) from a segment file name; ok=false
// for anything that does not look like one.
func parseSegName(name string) (id, gen int64, ok bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".vmat") {
		return 0, 0, false
	}
	mid := name[len("seg-") : len(name)-len(".vmat")]
	dash := strings.IndexByte(mid, '-')
	if dash < 0 {
		return 0, 0, false
	}
	id, err1 := strconv.ParseInt(mid[:dash], 10, 64)
	gen, err2 := strconv.ParseInt(mid[dash+1:], 10, 64)
	if err1 != nil || err2 != nil || id < 1 || gen < 1 {
		return 0, 0, false
	}
	return id, gen, true
}

// segment is one open journal segment file. size and the accounting
// fields are atomics: appends mutate them under the store's append
// lock, the compactor swaps whole segments under the segment write
// lock, and Status reads them with no lock at all.
type segment struct {
	seq  int64 // runtime handle identity (recordRef.seg); unique per open file
	id   int64
	gen  int64
	f    *os.File
	path string

	size        atomic.Int64 // current byte length
	liveBytes   atomic.Int64
	deadBytes   atomic.Int64 // superseded records, tombstones, compaction leftovers
	liveRecords atomic.Int64
	deadRecords atomic.Int64
}

// openSegment opens (creating if needed) the segment file for (id, gen)
// in dir.
func openSegment(dir string, seq, id, gen int64) (*segment, error) {
	path := filepath.Join(dir, segName(id, gen))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open segment %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat segment %s: %w", path, err)
	}
	sg := &segment{seq: seq, id: id, gen: gen, f: f, path: path}
	sg.size.Store(fi.Size())
	return sg, nil
}

// recordDead moves n bytes / one record from live to dead accounting.
func (sg *segment) recordDead(n int64) {
	sg.liveBytes.Add(-n)
	sg.deadBytes.Add(n)
	sg.liveRecords.Add(-1)
	sg.deadRecords.Add(1)
}

// addLive accounts one appended (or replayed) live record.
func (sg *segment) addLive(n int64) {
	sg.liveBytes.Add(n)
	sg.liveRecords.Add(1)
}

// addDead accounts one record that is dead on arrival (a tombstone, a
// lost-race duplicate, or a replayed superseded record).
func (sg *segment) addDead(n int64) {
	sg.deadBytes.Add(n)
	sg.deadRecords.Add(1)
}

// syncDir fsyncs a directory so a just-renamed or just-created file's
// directory entry is durable — the other half of tmp+rename atomicity.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
