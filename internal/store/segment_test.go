package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// tinySeg is a segment threshold small enough that a handful of puts
// rolls several times.
const tinySeg = 512

// putN writes n distinct keyed values and returns the expected
// key→value map.
func putN(t *testing.T, s *Store, n int, prefix string) map[string]string {
	t.Helper()
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s-%03d", prefix, i)
		v := fmt.Sprintf("value-%s-%03d", prefix, i)
		if err := s.Put(k, "test", v, Meta{}); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		want[k] = v
	}
	return want
}

// checkAll asserts every key in want is readable with its value and
// that the store holds exactly len(want) entries.
func checkAll(t *testing.T, s *Store, want map[string]string) {
	t.Helper()
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k, v := range want {
		e, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", k, ok, err)
		}
		var got string
		if err := json.Unmarshal(e.Value, &got); err != nil || got != v {
			t.Fatalf("Get(%s) = %q (err=%v), want %q", k, got, err, v)
		}
	}
}

// TestSegmentRollAndReopen drives the active segment past the threshold
// repeatedly and checks that the layout rolls, everything stays
// readable, and both reopen paths (snapshot and full replay) converge.
func TestSegmentRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	want := putN(t, s, 40, "roll")
	st := s.Status()
	if st.Segments < 3 {
		t.Fatalf("after 40 puts at a %d-byte threshold, only %d segments", tinySeg, st.Segments)
	}
	checkAll(t, s, want)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Snapshot-path reopen.
	s2 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	checkAll(t, s2, want)
	if got := s2.Status().Segments; got != st.Segments {
		t.Fatalf("reopen changed segment count: %d vs %d", got, st.Segments)
	}
	s2.Close()

	// Full-replay reopen.
	if err := os.Remove(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatalf("remove snapshot: %v", err)
	}
	s3 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	defer s3.Close()
	checkAll(t, s3, want)
}

// TestDeleteSemantics: delete kills a key, a later put revives it, and
// both reopen paths agree on the result.
func TestDeleteSemantics(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg, Metrics: reg})
	want := putN(t, s, 12, "del")

	if ok, err := s.Delete("del-003"); err != nil || !ok {
		t.Fatalf("Delete(del-003): ok=%v err=%v", ok, err)
	}
	delete(want, "del-003")
	if ok, err := s.Delete("del-003"); err != nil || ok {
		t.Fatalf("second Delete(del-003): ok=%v err=%v, want no-op", ok, err)
	}
	if ok, err := s.Delete("never-was"); err != nil || ok {
		t.Fatalf("Delete(absent): ok=%v err=%v, want no-op", ok, err)
	}
	if s.Has("del-003") {
		t.Fatal("deleted key still Has")
	}
	if _, ok, _ := s.Get("del-003"); ok {
		t.Fatal("deleted key still Gets")
	}
	if v := reg.Counter(MetricDeletes).Value(); v != 1 {
		t.Fatalf("deletes counter = %d, want 1", v)
	}

	// Revive with a different value: the tombstone shadows the first
	// record, the revival wins.
	if err := s.Put("del-003", "test", "revived", Meta{}); err != nil {
		t.Fatalf("revive Put: %v", err)
	}
	want["del-003"] = "revived"
	checkAll(t, s, want)
	s.Close()

	s2 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	checkAll(t, s2, want)
	s2.Close()

	os.Remove(filepath.Join(dir, SnapshotName))
	s3 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	defer s3.Close()
	checkAll(t, s3, want)
}

// TestDeleteAcrossSegments deletes keys whose records live in sealed
// segments: the tombstone lands in the active segment but must shadow
// the old record on replay.
func TestDeleteAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	want := putN(t, s, 30, "x")
	if s.Status().Segments < 3 {
		t.Fatalf("want ≥3 segments, got %d", s.Status().Segments)
	}
	// x-000 is in the first (sealed) segment by construction.
	if ok, err := s.Delete("x-000"); err != nil || !ok {
		t.Fatalf("Delete(x-000): ok=%v err=%v", ok, err)
	}
	delete(want, "x-000")
	st := s.Status()
	if st.DeadBytes == 0 {
		t.Fatal("delete across segments recorded no dead bytes")
	}
	s.Close()

	os.Remove(filepath.Join(dir, SnapshotName))
	s2 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	defer s2.Close()
	checkAll(t, s2, want)
	if _, ok, _ := s2.Get("x-000"); ok {
		t.Fatal("tombstoned key resurrected by full replay")
	}
}

// TestLegacyJournalMigration builds a pre-segmented data dir by hand
// (records in journal.vmat, nothing else) and checks that first open
// migrates it into segment 1, serves identical results, and that the
// migrated layout round-trips.
func TestLegacyJournalMigration(t *testing.T) {
	dir := t.TempDir()
	want := map[string]string{}
	var legacy []byte
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("legacy-%d", i)
		v := fmt.Sprintf("old-value-%d", i)
		raw, _ := json.Marshal(v)
		rec, err := encodeRecord(&Entry{Key: k, Kind: "test", Value: raw})
		if err != nil {
			t.Fatalf("encodeRecord: %v", err)
		}
		legacy = append(legacy, rec...)
		want[k] = v
	}
	if err := os.WriteFile(filepath.Join(dir, JournalName), legacy, 0o644); err != nil {
		t.Fatalf("write legacy journal: %v", err)
	}

	s := mustOpen(t, dir, Config{})
	checkAll(t, s, want)
	if _, err := os.Stat(filepath.Join(dir, JournalName)); !os.IsNotExist(err) {
		t.Fatalf("legacy journal still present after migration (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1, 1))); err != nil {
		t.Fatalf("migrated segment missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatalf("manifest missing after migration: %v", err)
	}
	// The migrated store is a normal store: writable, reopenable.
	if err := s.Put("new-key", "test", "post-migration", Meta{}); err != nil {
		t.Fatalf("Put after migration: %v", err)
	}
	want["new-key"] = "post-migration"
	s.Close()

	s2 := mustOpen(t, dir, Config{})
	defer s2.Close()
	checkAll(t, s2, want)
}

// TestStatusAccounting checks the numbers /healthz shows are grounded:
// live+dead bytes match file sizes, and deletes move bytes from live to
// dead.
func TestStatusAccounting(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg, Metrics: reg})
	defer s.Close()
	putN(t, s, 20, "acct")

	st := s.Status()
	var fileTotal int64
	s.segMu.RLock()
	for _, seq := range s.order {
		fileTotal += s.segs[seq].size.Load()
	}
	s.segMu.RUnlock()
	if st.LiveBytes+st.DeadBytes != fileTotal {
		t.Fatalf("live(%d)+dead(%d) != file bytes(%d)", st.LiveBytes, st.DeadBytes, fileTotal)
	}
	if st.DeadBytes != 0 {
		t.Fatalf("pure-append store has %d dead bytes", st.DeadBytes)
	}

	liveBefore := st.LiveBytes
	if _, err := s.Delete("acct-000"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st = s.Status()
	if st.LiveBytes >= liveBefore {
		t.Fatalf("delete did not shrink live bytes: %d -> %d", liveBefore, st.LiveBytes)
	}
	if st.DeadBytes == 0 || st.DeadRatio <= 0 {
		t.Fatalf("delete left dead accounting empty: %+v", st)
	}
	if g := reg.Gauge(MetricDeadBytes).Value(); g != st.DeadBytes {
		t.Fatalf("dead-bytes gauge %d != status %d", g, st.DeadBytes)
	}
	if g := reg.Gauge(MetricSegments).Value(); int(g) != st.Segments {
		t.Fatalf("segments gauge %d != status %d", g, st.Segments)
	}
}
