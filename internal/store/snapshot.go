package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// The index snapshot makes reopen snapshot-load + tail-replay instead
// of full-journal replay. It is a point-in-time capture of the live
// index and per-segment accounting, stamped with exactly how much of
// each segment it covers: sealed segments fully, the then-active
// segment up to its append offset. On open, if the covered segments
// still prefix the manifest order (rolls after the snapshot only append
// new segments, so they keep it valid; compaction replaces the prefix,
// so it invalidates it — and immediately writes a fresh one), the store
// loads the snapshot and replays only the bytes past each watermark.
// The snapshot is a pure cache: corrupt, stale, or missing just means a
// full replay, never an error.
//
// Encoding (inside one CRC frame, magic "VMS1", little-endian):
//
//	u32 version
//	u64 manifest generation (informational)
//	u64 unix seconds at capture (drives store_snapshot_age_seconds)
//	u32 segment count; per segment:
//	    u64 id, u64 gen, u64 covered bytes,
//	    u64 live bytes, u64 dead bytes, u64 live records, u64 dead records
//	u64 key count; per key:
//	    u16 key length, key bytes, u32 segment index, u64 offset, u32 frame length
//
// The binary layout is what buys the reopen speedup: loading is one
// read, one CRC pass, and a allocation-light parse (keys are substrings
// of a single backing string), against a JSON unmarshal per record on
// the replay path.

// SnapshotName is the index snapshot inside the store directory.
// Exported so operators (and tests) can find it.
const SnapshotName = "index.snap"

var snapshotMagic = [4]byte{'V', 'M', 'S', '1'}

const snapshotVersion = 1

// snapSegment is one covered segment in the snapshot, in replay order.
type snapSegment struct {
	id, gen     int64
	covered     int64
	liveBytes   int64
	deadBytes   int64
	liveRecords int64
	deadRecords int64
}

// snapshot is a decoded index snapshot.
type snapshot struct {
	generation int64
	unixTime   int64
	segs       []snapSegment
	keys       []snapKey
}

type snapKey struct {
	key    string
	segIdx uint32
	off    int64
	length int64
}

// encodeSnapshot renders the snapshot payload and frames it.
func encodeSnapshot(sn *snapshot) ([]byte, error) {
	size := 4 + 8 + 8 + 4 + len(sn.segs)*56 + 8
	for _, k := range sn.keys {
		size += 2 + len(k.key) + 4 + 8 + 4
	}
	payload := make([]byte, 0, size)
	var scratch [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		payload = append(payload, scratch[:4]...)
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		payload = append(payload, scratch[:8]...)
	}
	u32(snapshotVersion)
	u64(uint64(sn.generation))
	u64(uint64(sn.unixTime))
	u32(uint32(len(sn.segs)))
	for _, sg := range sn.segs {
		u64(uint64(sg.id))
		u64(uint64(sg.gen))
		u64(uint64(sg.covered))
		u64(uint64(sg.liveBytes))
		u64(uint64(sg.deadBytes))
		u64(uint64(sg.liveRecords))
		u64(uint64(sg.deadRecords))
	}
	u64(uint64(len(sn.keys)))
	for _, k := range sn.keys {
		if len(k.key) > 0xffff {
			return nil, fmt.Errorf("store: snapshot key longer than 64KiB")
		}
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(k.key)))
		payload = append(payload, scratch[:2]...)
		payload = append(payload, k.key...)
		u32(k.segIdx)
		u64(uint64(k.off))
		u32(uint32(k.length))
	}
	return encodeFrame(snapshotMagic, payload)
}

// decodeSnapshot parses snapshot bytes. Any structural problem is an
// error — the caller treats every error as "no snapshot" and falls back
// to full replay. Hostile bytes must never panic (fuzz-enforced).
func decodeSnapshot(b []byte) (*snapshot, error) {
	if len(b) < frameHeaderLen || !bytes.Equal(b[:4], snapshotMagic[:]) {
		return nil, fmt.Errorf("bad snapshot header")
	}
	payload := b[frameHeaderLen:]
	if int64(binary.LittleEndian.Uint32(b[4:])) != int64(len(payload)) {
		return nil, fmt.Errorf("snapshot length mismatch")
	}
	if binary.LittleEndian.Uint32(b[8:]) != crc32.ChecksumIEEE(payload) {
		return nil, fmt.Errorf("snapshot checksum mismatch")
	}
	// Numeric fields parse straight from the payload slice; keys become
	// substrings of one backing string, so the parse allocates nothing
	// per entry beyond the index structures themselves.
	s := string(payload)
	pos := 0
	need := func(n int) error {
		if len(s)-pos < n {
			return fmt.Errorf("snapshot truncated at byte %d", pos)
		}
		return nil
	}
	ru32 := func() uint32 {
		v := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		return v
	}
	ru64 := func() uint64 {
		v := binary.LittleEndian.Uint64(payload[pos:])
		pos += 8
		return v
	}
	if err := need(4 + 8 + 8 + 4); err != nil {
		return nil, err
	}
	if v := ru32(); v != snapshotVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d", v)
	}
	sn := &snapshot{generation: int64(ru64()), unixTime: int64(ru64())}
	nSegs := int(ru32())
	if nSegs < 0 || nSegs > 1<<20 {
		return nil, fmt.Errorf("implausible snapshot segment count %d", nSegs)
	}
	for i := 0; i < nSegs; i++ {
		if err := need(56); err != nil {
			return nil, err
		}
		sg := snapSegment{
			id: int64(ru64()), gen: int64(ru64()), covered: int64(ru64()),
			liveBytes: int64(ru64()), deadBytes: int64(ru64()),
			liveRecords: int64(ru64()), deadRecords: int64(ru64()),
		}
		if sg.id < 1 || sg.gen < 1 || sg.covered < 0 {
			return nil, fmt.Errorf("snapshot segment %d out of range", i)
		}
		sn.segs = append(sn.segs, sg)
	}
	if err := need(8); err != nil {
		return nil, err
	}
	nKeys := int64(ru64())
	if nKeys < 0 || nKeys > int64(len(s)) {
		return nil, fmt.Errorf("implausible snapshot key count %d", nKeys)
	}
	sn.keys = make([]snapKey, 0, nKeys)
	for i := int64(0); i < nKeys; i++ {
		if err := need(2); err != nil {
			return nil, err
		}
		kl := int(binary.LittleEndian.Uint16(payload[pos:]))
		pos += 2
		if err := need(kl + 4 + 8 + 4); err != nil {
			return nil, err
		}
		key := s[pos : pos+kl]
		pos += kl
		segIdx := ru32()
		off := int64(ru64())
		length := int64(ru32())
		if int(segIdx) >= len(sn.segs) {
			return nil, fmt.Errorf("snapshot key %d references segment %d of %d", i, segIdx, len(sn.segs))
		}
		if key == "" || length < frameHeaderLen || off < 0 || off+length > sn.segs[segIdx].covered {
			return nil, fmt.Errorf("snapshot key %d has an out-of-coverage record ref", i)
		}
		sn.keys = append(sn.keys, snapKey{key: key, segIdx: segIdx, off: off, length: length})
	}
	if pos != len(s) {
		return nil, fmt.Errorf("snapshot has %d trailing bytes", len(s)-pos)
	}
	return sn, nil
}

// writeSnapshotFile atomically replaces dir's snapshot (tmp + rename +
// dir sync).
func writeSnapshotFile(dir string, sn *snapshot) error {
	rec, err := encodeSnapshot(sn)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, SnapshotName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create snapshot temp: %w", err)
	}
	if _, err := f.Write(rec); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close snapshot temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: swap snapshot: %w", err)
	}
	return syncDir(dir)
}

// loadSnapshotFile reads and decodes dir's snapshot. Missing file or
// undecodable bytes both return (nil, reason) — the caller logs the
// reason and replays in full.
func loadSnapshotFile(dir string) (*snapshot, string) {
	b, err := os.ReadFile(filepath.Join(dir, SnapshotName))
	if os.IsNotExist(err) {
		return nil, ""
	}
	if err != nil {
		return nil, err.Error()
	}
	sn, derr := decodeSnapshot(b)
	if derr != nil {
		return nil, derr.Error()
	}
	return sn, ""
}

// captureSnapshot builds a snapshot of the store's current state. The
// caller must hold appendMu (no records may land while the capture
// runs) — readers stay unblocked apart from shard-at-a-time read locks
// during the index walk.
func (s *Store) captureSnapshot() *snapshot {
	s.segMu.RLock()
	sn := &snapshot{generation: s.generation, unixTime: time.Now().Unix()}
	segIdx := make(map[int64]uint32, len(s.order))
	for i, seq := range s.order {
		sg := s.segs[seq]
		segIdx[sg.seq] = uint32(i)
		sn.segs = append(sn.segs, snapSegment{
			id: sg.id, gen: sg.gen, covered: sg.size.Load(),
			liveBytes: sg.liveBytes.Load(), deadBytes: sg.deadBytes.Load(),
			liveRecords: sg.liveRecords.Load(), deadRecords: sg.deadRecords.Load(),
		})
	}
	s.segMu.RUnlock()
	sn.keys = make([]snapKey, 0, s.idx.len())
	s.idx.walk(func(key string, ref recordRef) {
		idx, ok := segIdx[ref.seg]
		if !ok {
			return // unreachable: every live ref points at an open segment
		}
		sn.keys = append(sn.keys, snapKey{key: key, segIdx: idx, off: ref.off, length: ref.length})
	})
	return sn
}
