package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

// TestSnapshotTailReplay: a snapshot from a clean close plus appends
// from a later, killed session — reopen must load the snapshot and
// replay only the tail, converging on the full state.
func TestSnapshotTailReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	want := putN(t, s, 20, "base")
	s.Close() // writes the snapshot

	// Second session: more appends, a delete, then a kill (handles
	// dropped without Close, so the snapshot is not refreshed).
	s2 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	for k, v := range putN(t, s2, 10, "tail") {
		want[k] = v
	}
	if ok, err := s2.Delete("base-005"); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	delete(want, "base-005")
	s2.closeSegments()

	s3 := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	defer s3.Close()
	checkAll(t, s3, want)
	if _, ok, _ := s3.Get("base-005"); ok {
		t.Fatal("tail-replayed tombstone ignored: base-005 resurrected")
	}
}

// TestSnapshotEquivalence: reopening via snapshot and via full replay
// must produce identical contents and identical accounting.
func TestSnapshotEquivalence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	want := putN(t, s, 30, "eq")
	for i := 0; i < 30; i += 5 {
		k := fmt.Sprintf("eq-%03d", i)
		if _, err := s.Delete(k); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		delete(want, k)
	}
	s.Close()

	snap := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	snapStatus := snap.Status()
	checkAll(t, snap, want)
	snap.Close()

	os.Remove(filepath.Join(dir, SnapshotName))
	replay := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	defer replay.Close()
	replayStatus := replay.Status()
	checkAll(t, replay, want)

	if snapStatus.LiveBytes != replayStatus.LiveBytes ||
		snapStatus.DeadBytes != replayStatus.DeadBytes ||
		snapStatus.Entries != replayStatus.Entries ||
		snapStatus.Segments != replayStatus.Segments {
		t.Fatalf("snapshot and replay accounting diverge:\n snap: %+v\nreplay: %+v", snapStatus, replayStatus)
	}
}

// TestCorruptSnapshotFallsBack: hostile snapshot bytes must never stop
// an open — the store counts the corruption, replays in full, and
// serves everything.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Config{SegmentBytes: tinySeg})
	want := putN(t, s, 15, "cs")
	s.Close()

	for name, mutate := range map[string]func([]byte) []byte{
		"garbage":   func(b []byte) []byte { return []byte("not a snapshot") },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			if len(b) > 40 {
				b[40] ^= 0xff
			}
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			orig, err := os.ReadFile(filepath.Join(dir, SnapshotName))
			if err != nil {
				t.Fatalf("read snapshot: %v", err)
			}
			defer os.WriteFile(filepath.Join(dir, SnapshotName), orig, 0o644)
			buf := append([]byte(nil), orig...)
			if err := os.WriteFile(filepath.Join(dir, SnapshotName), mutate(buf), 0o644); err != nil {
				t.Fatalf("write mutated snapshot: %v", err)
			}
			reg := metrics.New()
			s2, err := Open(dir, Config{SegmentBytes: tinySeg, Metrics: reg})
			if err != nil {
				t.Fatalf("Open with %s snapshot: %v", name, err)
			}
			defer s2.Close()
			checkAll(t, s2, want)
			if c := reg.Counter(MetricCorrupt).Value(); c != 1 {
				t.Fatalf("corrupt counter = %d, want 1", c)
			}
		})
	}
}

// TestSnapshotCodecRoundTrip pins the binary encoding: encode → decode
// must be lossless.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	sn := &snapshot{
		generation: 7,
		unixTime:   1700000000,
		segs: []snapSegment{
			{id: 1, gen: 2, covered: 4096, liveBytes: 3000, deadBytes: 1096, liveRecords: 30, deadRecords: 11},
			{id: 5, gen: 1, covered: 128, liveBytes: 128, liveRecords: 1},
		},
		keys: []snapKey{
			{key: "abc", segIdx: 0, off: 0, length: 100},
			{key: "defgh", segIdx: 1, off: 28, length: 100},
		},
	}
	b, err := encodeSnapshot(sn)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeSnapshot(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.generation != sn.generation || got.unixTime != sn.unixTime ||
		len(got.segs) != len(sn.segs) || len(got.keys) != len(sn.keys) {
		t.Fatalf("round trip diverged: %+v vs %+v", got, sn)
	}
	for i := range sn.segs {
		if got.segs[i] != sn.segs[i] {
			t.Fatalf("segment %d diverged: %+v vs %+v", i, got.segs[i], sn.segs[i])
		}
	}
	for i := range sn.keys {
		if got.keys[i] != sn.keys[i] {
			t.Fatalf("key %d diverged: %+v vs %+v", i, got.keys[i], sn.keys[i])
		}
	}
}

// TestSnapshotAgeGauge: the gauge reads -1 with no snapshot and ≥0
// after one is written.
func TestSnapshotAgeGauge(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	s := mustOpen(t, dir, Config{Metrics: reg})
	defer s.Close()
	if g := reg.Gauge(MetricSnapshotAge).Value(); g != -1 {
		t.Fatalf("snapshot age before any snapshot = %d, want -1", g)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if g := reg.Gauge(MetricSnapshotAge).Value(); g < 0 {
		t.Fatalf("snapshot age after snapshot = %d, want ≥ 0", g)
	}
	if c := reg.Counter(MetricSnapshots).Value(); c != 1 {
		t.Fatalf("snapshots counter = %d, want 1", c)
	}
}
