// Package store is a persistent, content-addressed result store for
// deterministic VMAT workloads. Because every scenario is a pure
// function of its spec (the trial-runner guarantees bit-identical rows
// for any worker count), the canonical JSON encoding of a spec is a
// complete identity for its results: hashing it yields a key under
// which the rows can be cached forever, and a cache hit is provably
// equivalent to re-execution.
//
// On disk the store is a segmented journal (see segment.go): appends
// land in the active segment, which rolls into an immutable sealed
// segment at a size threshold; a background compactor merges the sealed
// prefix, dropping superseded and tombstoned records (compact.go); the
// manifest records the replay order through atomic rewrites
// (manifest.go); and an index snapshot turns reopen into snapshot-load
// plus tail-replay instead of a full-journal replay (snapshot.go).
// Every Put appends one checksummed record and fsyncs before the entry
// becomes visible, so a crash can only ever lose the record being
// written, never a completed one. A truncated or corrupt segment tail —
// the signature of a torn write — is logged, counted in metrics, and
// truncated away rather than treated as fatal.
//
// In memory, a 64-way sharded key→offset index (index.go) locates every
// record under per-shard read locks, and a bounded LRU of decoded
// entries fronts the disk so hot keys (a sweep re-reading its own
// cells, vmat-bench regenerating a figure) never touch a file.
// Hit/miss/eviction/corruption counters and segment/byte accounting
// land in an internal/metrics registry.
package store

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Metric names the store reports into its registry.
const (
	MetricHits        = "store_hits_total"
	MetricMisses      = "store_misses_total"
	MetricPuts        = "store_puts_total"
	MetricDeletes     = "store_deletes_total"
	MetricEvictions   = "store_cache_evictions_total"
	MetricCorrupt     = "store_corrupt_records_total"
	MetricEntries     = "store_entries"
	MetricSegments    = "store_segments_total"
	MetricLiveBytes   = "store_live_bytes"
	MetricDeadBytes   = "store_dead_bytes"
	MetricCompactions = "store_compactions_total"
	MetricReclaimed   = "store_compact_bytes_reclaimed_total"
	MetricSnapshots   = "store_snapshots_total"
	MetricSnapshotAge = "store_snapshot_age_seconds"
)

// errClosed reports use of a store after Close.
var errClosed = errors.New("store: store is closed")

// Meta is the non-identity metadata stored alongside a result: how long
// the original execution took and which build produced it.
type Meta struct {
	DurationMicros int64  `json:"duration_us,omitempty"`
	Version        string `json:"version,omitempty"`
}

// Entry is one stored result: the content-address key, the kind of
// workload that produced it, its metadata, and the result value as raw
// JSON (decoded by typed helpers such as GetScenario). Tomb marks a
// tombstone record — a Delete in the journal; tombstones exist only on
// disk and are never returned by Get.
type Entry struct {
	Key   string          `json:"key"`
	Kind  string          `json:"kind,omitempty"`
	Meta  Meta            `json:"meta"`
	Value json.RawMessage `json:"value"`
	Tomb  bool            `json:"tomb,omitempty"`
}

// Config configures a Store. Zero values pick serving defaults.
type Config struct {
	// CacheEntries bounds the in-memory LRU of decoded entries that
	// fronts the journal. Entries beyond the bound are evicted from
	// memory only — the journal keeps everything. Default 256.
	CacheEntries int
	// SegmentBytes is the size at which the active segment is sealed
	// and a new one started. Default 64 MiB.
	SegmentBytes int64
	// CompactInterval is the background maintenance period: each tick
	// refreshes the snapshot-age gauge, writes an index snapshot when
	// enough appends have accumulated, and compacts when the sealed
	// dead-byte ratio crosses CompactMinDeadRatio. Zero disables the
	// background loop (snapshots still happen on Close; Compact and
	// Snapshot can be called explicitly).
	CompactInterval time.Duration
	// CompactMinDeadRatio is the sealed dead/total byte ratio that
	// triggers a background compaction. Default 0.30.
	CompactMinDeadRatio float64
	// SnapshotEvery is how many appends may accumulate before the
	// background loop refreshes the index snapshot. Default 4096.
	SnapshotEvery int
	// DisableFsync skips the per-record fsync on Put and Delete. Bulk
	// loading and benchmarks only: a crash can lose recent appends,
	// though never corrupt the store (the CRC frames still truncate
	// cleanly).
	DisableFsync bool
	// Metrics receives the store's counters. Nil creates a private
	// registry.
	Metrics *metrics.Registry
	// Log receives human-readable notices (journal recovery, corrupt
	// tails, rolls, compactions). Nil discards them.
	Log func(format string, args ...any)
}

// Status is a point-in-time view of the storage engine, served under
// the "store" section of /healthz.
type Status struct {
	Segments           int     `json:"segments"`
	Entries            int64   `json:"entries"`
	LiveBytes          int64   `json:"live_bytes"`
	DeadBytes          int64   `json:"dead_bytes"`
	DeadRatio          float64 `json:"dead_ratio"`
	Compacting         bool    `json:"compacting"`
	Compactions        int64   `json:"compactions"`
	SnapshotAgeSeconds int64   `json:"snapshot_age_seconds"` // -1 when no snapshot exists
	Generation         int64   `json:"generation"`
}

// Store is a file-backed content-addressed result store. All methods
// are safe for concurrent use.
//
// Locking, outermost first: maintMu serializes maintenance (compaction,
// snapshot writes, Close); appendMu serializes appends and rolls so a
// record's offset, fsync, and index insert stay atomic without blocking
// readers; segMu guards the segment table (readers hold it shared
// across ReadAt; rolls and compaction swaps hold it exclusive, and all
// manifest commits happen under it so two structural changes cannot
// interleave); the index shards and the LRU have their own locks.
type Store struct {
	dir           string
	segmentBytes  int64
	minDeadRatio  float64
	snapshotEvery int64
	fsync         bool
	log           func(format string, args ...any)

	maintMu  sync.Mutex
	appendMu sync.Mutex

	segMu      sync.RWMutex
	segs       map[int64]*segment // by runtime seq
	order      []int64            // replay order of seqs; last is active
	nextID     int64
	generation int64

	nextSeq atomic.Int64
	idx     *shardedIndex

	// Bounded decoded-entry cache: cache maps key -> list element whose
	// value is an Entry; lru's front is the most recently used.
	cacheMu  sync.Mutex
	cache    map[string]*list.Element
	lru      *list.List
	cacheCap int

	closed           atomic.Bool
	compacting       atomic.Bool
	entriesCount     atomic.Int64
	appendsSinceSnap atomic.Int64
	lastSnapUnix     atomic.Int64 // 0 = no snapshot this process knows of
	delEpoch         atomic.Int64 // bumped per Delete; guards cache staleness

	bgStop chan struct{}
	bgDone chan struct{}

	crashAt func(stage string) bool // test-only compaction crash hook

	hits, misses, puts, deletes, evictions, corrupt *metrics.Counter
	compactionsC, reclaimed, snapshots              *metrics.Counter
	entries, segments, liveBytesG, deadBytesG       *metrics.Gauge
	snapAge                                         *metrics.Gauge
}

// Open opens (creating if needed) the store rooted at dir. A legacy
// single-file journal is migrated into segment 1 transparently; a
// corrupt or truncated segment tail is recovered, logged via cfg.Log,
// and counted under MetricCorrupt; a valid index snapshot turns the
// replay into a tail-replay. Only I/O errors are fatal.
func Open(dir string, cfg Config) (*Store, error) {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 64 << 20
	}
	if cfg.CompactMinDeadRatio <= 0 {
		cfg.CompactMinDeadRatio = 0.30
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 4096
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{
		dir:           dir,
		segmentBytes:  cfg.SegmentBytes,
		minDeadRatio:  cfg.CompactMinDeadRatio,
		snapshotEvery: int64(cfg.SnapshotEvery),
		fsync:         !cfg.DisableFsync,
		log:           cfg.Log,
		segs:          map[int64]*segment{},
		idx:           newShardedIndex(),
		cache:         map[string]*list.Element{},
		lru:           list.New(),
		cacheCap:      cfg.CacheEntries,
		hits:          cfg.Metrics.Counter(MetricHits),
		misses:        cfg.Metrics.Counter(MetricMisses),
		puts:          cfg.Metrics.Counter(MetricPuts),
		deletes:       cfg.Metrics.Counter(MetricDeletes),
		evictions:     cfg.Metrics.Counter(MetricEvictions),
		corrupt:       cfg.Metrics.Counter(MetricCorrupt),
		compactionsC:  cfg.Metrics.Counter(MetricCompactions),
		reclaimed:     cfg.Metrics.Counter(MetricReclaimed),
		snapshots:     cfg.Metrics.Counter(MetricSnapshots),
		entries:       cfg.Metrics.Gauge(MetricEntries),
		segments:      cfg.Metrics.Gauge(MetricSegments),
		liveBytesG:    cfg.Metrics.Gauge(MetricLiveBytes),
		deadBytesG:    cfg.Metrics.Gauge(MetricDeadBytes),
		snapAge:       cfg.Metrics.Gauge(MetricSnapshotAge),
	}
	if err := s.openLayout(); err != nil {
		s.closeSegments()
		return nil, err
	}
	if err := s.load(); err != nil {
		s.closeSegments()
		return nil, err
	}
	s.refreshAccounting()
	s.updateSnapAge()
	if cfg.CompactInterval > 0 {
		s.bgStop = make(chan struct{})
		s.bgDone = make(chan struct{})
		go s.background(cfg.CompactInterval)
	}
	return s, nil
}

// openLayout establishes the segment layout: clears tmp debris, loads
// (or rebuilds, or bootstraps) the manifest, migrates a legacy
// single-file journal, opens every listed segment, and deletes unlisted
// segment files — which are provably uncommitted (a half-finished
// compaction output, or a rolled file whose manifest commit never
// landed and which therefore never hosted a record).
func (s *Store) openLayout() error {
	for _, pat := range []string{ManifestName + ".tmp", SnapshotName + ".tmp", segPattern + ".tmp"} {
		matches, _ := filepath.Glob(filepath.Join(s.dir, pat))
		for _, p := range matches {
			os.Remove(p)
		}
	}
	m, err := loadManifest(s.dir)
	if err != nil {
		// A corrupt manifest is recoverable: segment names encode a
		// correct replay order (see segment.go). Keep the bytes for the
		// operator and rebuild.
		s.corrupt.Inc()
		s.log("store: manifest unreadable (%v); rebuilding from segment files", err)
		p := filepath.Join(s.dir, ManifestName)
		if rerr := os.Rename(p, p+".corrupt"); rerr != nil {
			return fmt.Errorf("store: set aside corrupt manifest: %w", rerr)
		}
		m = nil
	}
	if m == nil {
		files, err := scanSegmentFiles(s.dir)
		if err != nil {
			return err
		}
		legacy := filepath.Join(s.dir, JournalName)
		if len(files) == 0 {
			if fi, err := os.Stat(legacy); err == nil {
				// First open of a pre-segmented data dir: the legacy
				// journal has the same record format as a segment, so
				// migration is a rename.
				if err := os.Rename(legacy, filepath.Join(s.dir, segName(1, 1))); err != nil {
					return fmt.Errorf("store: migrate legacy journal: %w", err)
				}
				if err := syncDir(s.dir); err != nil {
					return err
				}
				s.log("store: migrated legacy %s (%d bytes) into segment %s", JournalName, fi.Size(), segName(1, 1))
				files = []manifestSegment{{ID: 1, Gen: 1}}
			}
		}
		var drop []manifestSegment
		if len(files) == 0 {
			m = &manifest{Version: manifestVersion, Generation: 1, NextID: 2, Segments: []manifestSegment{{ID: 1, Gen: 1}}}
			// The active segment file must exist before the manifest
			// references it.
			sg, err := openSegment(s.dir, s.nextSeq.Add(1), 1, 1)
			if err != nil {
				return err
			}
			s.segs[sg.seq] = sg
			s.order = append(s.order, sg.seq)
		} else {
			m, drop = bootstrapManifest(files)
		}
		for _, d := range drop {
			p := filepath.Join(s.dir, segName(d.ID, d.Gen))
			s.log("store: dropping superseded segment %s (newer generation exists)", filepath.Base(p))
			os.Remove(p)
		}
		if err := commitManifest(s.dir, m); err != nil {
			return err
		}
	} else if _, err := os.Stat(filepath.Join(s.dir, JournalName)); err == nil {
		s.log("store: ignoring stray %s — this directory already uses the segmented layout", JournalName)
	}

	for _, ms := range m.Segments {
		if len(s.order) > 0 {
			if sg := s.segs[s.order[len(s.order)-1]]; sg.id == ms.ID && sg.gen == ms.Gen {
				continue // fresh-store segment opened above
			}
		}
		path := filepath.Join(s.dir, segName(ms.ID, ms.Gen))
		if _, err := os.Stat(path); err != nil {
			return fmt.Errorf("store: manifest lists segment %s but it is missing (%v) — run vmat-store verify", filepath.Base(path), err)
		}
		sg, err := openSegment(s.dir, s.nextSeq.Add(1), ms.ID, ms.Gen)
		if err != nil {
			return err
		}
		s.segs[sg.seq] = sg
		s.order = append(s.order, sg.seq)
	}

	files, err := scanSegmentFiles(s.dir)
	if err != nil {
		return err
	}
	listed := make(map[[2]int64]bool, len(m.Segments))
	for _, ms := range m.Segments {
		listed[[2]int64{ms.ID, ms.Gen}] = true
	}
	for _, f := range files {
		if !listed[[2]int64{f.ID, f.Gen}] {
			p := filepath.Join(s.dir, segName(f.ID, f.Gen))
			s.log("store: removing uncommitted segment %s (not in manifest)", filepath.Base(p))
			os.Remove(p)
		}
	}

	s.nextID = m.NextID
	s.generation = m.Generation
	return nil
}

// load rebuilds the index: from the index snapshot plus per-segment
// tail replay when the snapshot still matches the layout, from a full
// replay otherwise.
func (s *Store) load() error {
	sn, reason := loadSnapshotFile(s.dir)
	if reason != "" {
		s.corrupt.Inc()
		s.log("store: index snapshot unusable (%s); replaying all segments", reason)
	}
	start := make([]int64, len(s.order))
	if sn != nil {
		if ok, why := s.applySnapshot(sn, start); !ok {
			s.log("store: index snapshot stale (%s); replaying all segments", why)
			s.idx = newShardedIndex()
			for _, seq := range s.order {
				sg := s.segs[seq]
				sg.liveBytes.Store(0)
				sg.deadBytes.Store(0)
				sg.liveRecords.Store(0)
				sg.deadRecords.Store(0)
			}
			for i := range start {
				start[i] = 0
			}
			sn = nil
		}
	}
	for i, seq := range s.order {
		if err := s.replaySegment(s.segs[seq], start[i]); err != nil {
			return err
		}
	}
	if sn != nil {
		s.lastSnapUnix.Store(sn.unixTime)
	}
	s.entriesCount.Store(int64(s.idx.len()))
	return nil
}

// applySnapshot checks sn against the current layout and, if its
// covered segments still prefix the manifest order, installs its index
// and accounting and fills start with per-segment replay watermarks.
func (s *Store) applySnapshot(sn *snapshot, start []int64) (bool, string) {
	if len(sn.segs) > len(s.order) {
		return false, "covers more segments than the manifest lists"
	}
	for i, ss := range sn.segs {
		sg := s.segs[s.order[i]]
		if sg.id != ss.id || sg.gen != ss.gen {
			return false, fmt.Sprintf("segment %d is now (%d,%d), snapshot has (%d,%d)", i, sg.id, sg.gen, ss.id, ss.gen)
		}
		if ss.covered > sg.size.Load() {
			return false, fmt.Sprintf("covers %d bytes of %s, file has %d", ss.covered, filepath.Base(sg.path), sg.size.Load())
		}
	}
	for i, ss := range sn.segs {
		sg := s.segs[s.order[i]]
		sg.liveBytes.Store(ss.liveBytes)
		sg.deadBytes.Store(ss.deadBytes)
		sg.liveRecords.Store(ss.liveRecords)
		sg.deadRecords.Store(ss.deadRecords)
		start[i] = ss.covered
	}
	s.idx.preallocate(len(sn.keys))
	for _, k := range sn.keys {
		s.idx.insertUnlocked(k.key, recordRef{seg: s.order[k.segIdx], off: k.off, length: k.length})
	}
	return true, ""
}

// replaySegment indexes sg's records from byte offset from onward,
// running the same state machine as live appends: first put per key
// wins, a tombstone kills its key, a later put revives it. The first
// incomplete or corrupt record marks the recovery point — everything
// from there on is the debris of a torn write, and is logged, counted,
// and truncated so subsequent appends start from a clean boundary.
func (s *Store) replaySegment(sg *segment, from int64) error {
	off, reason, err := scanFramesFrom(sg.f, journalMagic, from, func(off int64, payload []byte) error {
		var e Entry
		if jerr := json.Unmarshal(payload, &e); jerr != nil || e.Key == "" {
			return errors.New("undecodable record payload")
		}
		n := int64(frameHeaderLen + len(payload))
		if e.Tomb {
			if ref, ok := s.idx.delete(e.Key); ok {
				s.markDeadRef(ref)
			}
			sg.addDead(n)
			return nil
		}
		if s.idx.putIfAbsent(e.Key, recordRef{seg: sg.seq, off: off, length: n}) {
			sg.addLive(n)
		} else {
			sg.addDead(n)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: replay %s: %w", filepath.Base(sg.path), err)
	}
	if reason != "" {
		s.corrupt.Inc()
		s.log("store: %s corrupt at offset %d (%s); recovering complete records and truncating", filepath.Base(sg.path), off, reason)
		if err := sg.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate corrupt tail of %s: %w", filepath.Base(sg.path), err)
		}
	}
	sg.size.Store(off)
	return nil
}

// active returns the append segment. Stable for callers holding
// appendMu (only rolls, themselves under appendMu, change it).
func (s *Store) active() *segment {
	s.segMu.RLock()
	sg := s.segs[s.order[len(s.order)-1]]
	s.segMu.RUnlock()
	return sg
}

// markDeadRef moves the record behind ref to dead accounting in
// whichever open segment holds it.
func (s *Store) markDeadRef(ref recordRef) {
	s.segMu.RLock()
	sg := s.segs[ref.seg]
	s.segMu.RUnlock()
	if sg != nil {
		sg.recordDead(ref.length)
	}
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	return int(s.entriesCount.Load())
}

// Has reports whether key is stored, without counting a hit or miss.
func (s *Store) Has(key string) bool {
	return s.idx.has(key)
}

// Get returns the entry stored under key. A miss returns ok=false with
// no error; the error return is reserved for I/O and decode failures on
// a record the index says exists.
func (s *Store) Get(key string) (Entry, bool, error) {
	s.cacheMu.Lock()
	if el, ok := s.cache[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(Entry)
		s.cacheMu.Unlock()
		s.hits.Inc()
		return e, true, nil
	}
	s.cacheMu.Unlock()
	epoch := s.delEpoch.Load()
	ref, ok := s.idx.get(key)
	if !ok {
		s.misses.Inc()
		return Entry{}, false, nil
	}
	for attempt := 0; ; attempt++ {
		s.segMu.RLock()
		sg := s.segs[ref.seg]
		if sg == nil {
			s.segMu.RUnlock()
			// A compaction moved the record between the index lookup
			// and the segment fetch; the index already has its new
			// home.
			if attempt >= 8 {
				return Entry{}, false, fmt.Errorf("store: record for %s kept moving during lookup", key)
			}
			if ref, ok = s.idx.get(key); !ok {
				s.misses.Inc()
				return Entry{}, false, nil
			}
			continue
		}
		buf := make([]byte, ref.length)
		_, err := sg.f.ReadAt(buf, ref.off)
		s.segMu.RUnlock()
		if err != nil {
			return Entry{}, false, fmt.Errorf("store: read record for %s: %w", key, err)
		}
		e, derr := decodeRecord(buf)
		if derr != nil {
			// The record passed its checksum at replay time, so this is
			// in-place damage, not a torn write; surface it loudly.
			s.corrupt.Inc()
			return Entry{}, false, fmt.Errorf("store: record for %s: %w", key, derr)
		}
		// Cache only if no Delete landed since the index lookup — a
		// stale cache entry would outlive its tombstone.
		if s.delEpoch.Load() == epoch {
			s.cacheAdd(e)
		}
		s.hits.Inc()
		return e, true, nil
	}
}

// Put stores value (JSON-marshaled) under key. Puts are idempotent:
// storing an already-present key is a no-op, which makes concurrent
// write-back from several layers (job manager, sweep orchestrator)
// safe. The record is fsync'd before Put returns (unless the store was
// opened with DisableFsync).
func (s *Store) Put(key, kind string, value any, meta Meta) error {
	if s.closed.Load() {
		return errClosed
	}
	if s.idx.has(key) {
		return nil
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("store: marshal value for %s: %w", key, err)
	}
	e := Entry{Key: key, Kind: kind, Meta: meta, Value: raw}
	rec, err := encodeRecord(&e)
	if err != nil {
		return err
	}

	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	if s.closed.Load() {
		return errClosed
	}
	if s.idx.has(key) { // lost the race; first write wins
		return nil
	}
	active := s.active()
	off := active.size.Load()
	if _, err := active.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("store: append record: %w", err)
	}
	if s.fsync {
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("store: sync segment: %w", err)
		}
	}
	n := int64(len(rec))
	active.size.Store(off + n)
	if s.idx.putIfAbsent(key, recordRef{seg: active.seq, off: off, length: n}) {
		active.addLive(n)
		s.entriesCount.Add(1)
		s.cacheAdd(e)
	} else {
		active.addDead(n) // unreachable under appendMu, but keep the books straight
	}
	s.puts.Inc()
	s.appendsSinceSnap.Add(1)
	s.refreshAccounting()
	s.maybeRollLocked()
	return nil
}

// Delete removes key from the store by appending a tombstone record —
// the record's bytes stay in place (dead) until a compaction drops
// them. Returns whether the key was present. Deleting an absent key is
// a no-op. Like Put, the tombstone is fsync'd before Delete returns.
func (s *Store) Delete(key string) (bool, error) {
	if s.closed.Load() {
		return false, errClosed
	}
	if !s.idx.has(key) {
		return false, nil
	}
	rec, err := encodeRecord(&Entry{Key: key, Tomb: true})
	if err != nil {
		return false, err
	}

	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	if s.closed.Load() {
		return false, errClosed
	}
	if !s.idx.has(key) { // already deleted; don't pay for a second tombstone
		return false, nil
	}
	active := s.active()
	off := active.size.Load()
	if _, err := active.f.WriteAt(rec, off); err != nil {
		return false, fmt.Errorf("store: append tombstone: %w", err)
	}
	if s.fsync {
		if err := active.f.Sync(); err != nil {
			return false, fmt.Errorf("store: sync segment: %w", err)
		}
	}
	n := int64(len(rec))
	active.size.Store(off + n)
	active.addDead(n)
	if ref, ok := s.idx.delete(key); ok {
		s.markDeadRef(ref)
		s.entriesCount.Add(-1)
	}
	s.cacheRemove(key)
	s.delEpoch.Add(1)
	s.deletes.Inc()
	s.appendsSinceSnap.Add(1)
	s.refreshAccounting()
	s.maybeRollLocked()
	return true, nil
}

// maybeRollLocked seals the active segment and starts a new one once it
// crosses the size threshold. Caller holds appendMu. A roll failure is
// logged, not fatal: appends continue on the oversize segment and the
// next append retries.
func (s *Store) maybeRollLocked() {
	if s.active().size.Load() < s.segmentBytes {
		return
	}
	if err := s.rollLocked(); err != nil {
		s.log("store: segment roll failed: %v (appends continue on the oversize segment)", err)
	}
}

// rollLocked creates the next segment file, commits the manifest that
// lists it, and makes it the append target. Caller holds appendMu. The
// file is created before the manifest commit so the manifest never
// lists a missing file; a crash between the two leaves an empty
// unlisted file that the next open deletes.
func (s *Store) rollLocked() error {
	if err := s.active().f.Sync(); err != nil { // seal durably even with DisableFsync
		return fmt.Errorf("store: sync sealing segment: %w", err)
	}
	s.segMu.Lock()
	defer s.segMu.Unlock()
	id := s.nextID
	sg, err := openSegment(s.dir, s.nextSeq.Add(1), id, 1)
	if err != nil {
		return err
	}
	segsList := make([]manifestSegment, 0, len(s.order)+1)
	for _, seq := range s.order {
		cur := s.segs[seq]
		segsList = append(segsList, manifestSegment{ID: cur.id, Gen: cur.gen})
	}
	segsList = append(segsList, manifestSegment{ID: id, Gen: 1})
	m := &manifest{Version: manifestVersion, Generation: s.generation + 1, NextID: id + 1, Segments: segsList}
	if err := commitManifest(s.dir, m); err != nil {
		sg.f.Close()
		os.Remove(sg.path)
		return err
	}
	s.segs[sg.seq] = sg
	s.order = append(s.order, sg.seq)
	s.nextID = id + 1
	s.generation++
	s.segments.Set(int64(len(s.order)))
	s.log("store: rolled to segment %s (%d segments)", segName(id, 1), len(s.order))
	return nil
}

// Sync flushes the active segment to stable storage. Puts already sync
// on every record unless DisableFsync; Sync exists for shutdown and
// bulk-load paths that want an explicit final barrier.
func (s *Store) Sync() error {
	if s.closed.Load() {
		return errClosed
	}
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	return s.active().f.Sync()
}

// Snapshot writes a fresh index snapshot, making the next open a
// snapshot-load plus tail-replay. The background loop does this
// automatically; Snapshot exists for admin tooling and tests.
func (s *Store) Snapshot() error {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if s.closed.Load() {
		return errClosed
	}
	return s.writeSnapshotLocked()
}

// writeSnapshotLocked captures and writes an index snapshot. Caller
// holds maintMu.
func (s *Store) writeSnapshotLocked() error {
	s.appendMu.Lock()
	s.segMu.RLock()
	empty := len(s.order) == 0
	s.segMu.RUnlock()
	if empty { // segments already torn down (killed store); nothing to capture
		s.appendMu.Unlock()
		return nil
	}
	// The snapshot's covered watermarks are trusted blindly on reopen
	// (that is the speedup), so every covered byte must be durable
	// first — with per-Put fsync this is a no-op, with DisableFsync it
	// is the barrier that keeps the invariant.
	if err := s.active().f.Sync(); err != nil {
		s.appendMu.Unlock()
		return fmt.Errorf("store: sync before snapshot: %w", err)
	}
	sn := s.captureSnapshot()
	s.appendsSinceSnap.Store(0)
	s.appendMu.Unlock()
	if err := writeSnapshotFile(s.dir, sn); err != nil {
		return err
	}
	s.lastSnapUnix.Store(sn.unixTime)
	s.snapshots.Inc()
	s.snapAge.Set(0)
	return nil
}

// Status reports the engine's current shape for /healthz and admin
// tooling.
func (s *Store) Status() Status {
	s.segMu.RLock()
	st := Status{Segments: len(s.order), Generation: s.generation}
	var total int64
	for _, seq := range s.order {
		sg := s.segs[seq]
		st.LiveBytes += sg.liveBytes.Load()
		st.DeadBytes += sg.deadBytes.Load()
		total += sg.size.Load()
	}
	s.segMu.RUnlock()
	if total > 0 {
		st.DeadRatio = float64(st.DeadBytes) / float64(total)
	}
	st.Entries = s.entriesCount.Load()
	st.Compacting = s.compacting.Load()
	st.Compactions = s.compactionsC.Value()
	st.SnapshotAgeSeconds = s.updateSnapAge()
	return st
}

// Close stops background maintenance, writes a final index snapshot,
// and syncs and closes every segment. The store must not be used after
// Close.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.bgStop != nil {
		close(s.bgStop)
		<-s.bgDone
	}
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	if err := s.writeSnapshotLocked(); err != nil {
		s.log("store: final snapshot: %v", err)
	}
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	return s.closeSegments()
}

// closeSegments syncs and closes every open segment file, keeping the
// first error.
func (s *Store) closeSegments() error {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	var firstErr error
	for _, seq := range s.order {
		sg := s.segs[seq]
		if err := sg.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := sg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(s.segs, seq)
	}
	s.order = nil
	return firstErr
}

// background is the maintenance loop: refresh the snapshot-age gauge,
// snapshot after enough appends, compact when the sealed segments carry
// enough dead bytes.
func (s *Store) background(interval time.Duration) {
	defer close(s.bgDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.bgStop:
			return
		case <-t.C:
		}
		s.updateSnapAge()
		if s.appendsSinceSnap.Load() >= s.snapshotEvery {
			s.maintMu.Lock()
			if !s.closed.Load() {
				if err := s.writeSnapshotLocked(); err != nil {
					s.log("store: background snapshot: %v", err)
				}
			}
			s.maintMu.Unlock()
		}
		if s.shouldCompact() {
			if err := s.Compact(); err != nil && !errors.Is(err, errCompactionAborted) && !errors.Is(err, errClosed) {
				s.log("store: background compaction: %v", err)
			}
		}
	}
}

// compactMaxSealed bounds the sealed-segment count: past it the
// background loop merges even without dead bytes, so replay cost and
// file-handle count stay flat under pure-append workloads.
const compactMaxSealed = 32

// shouldCompact is the background trigger: sealed dead bytes crossed
// the configured ratio, or the sealed chain grew too long.
func (s *Store) shouldCompact() bool {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	if len(s.order) < 2 {
		return false
	}
	sealed := s.order[:len(s.order)-1]
	var total, dead int64
	for _, seq := range sealed {
		sg := s.segs[seq]
		total += sg.size.Load()
		dead += sg.deadBytes.Load()
	}
	if total == 0 {
		return len(sealed) > 1 // collapse empty chaff
	}
	if float64(dead)/float64(total) >= s.minDeadRatio {
		return true
	}
	return len(sealed) >= compactMaxSealed
}

// refreshAccounting publishes segment-derived gauges. Sums live
// atomics, so it is cheap enough to run per append.
func (s *Store) refreshAccounting() {
	s.segMu.RLock()
	var live, dead int64
	n := len(s.order)
	for _, seq := range s.order {
		sg := s.segs[seq]
		live += sg.liveBytes.Load()
		dead += sg.deadBytes.Load()
	}
	s.segMu.RUnlock()
	s.liveBytesG.Set(live)
	s.deadBytesG.Set(dead)
	s.segments.Set(int64(n))
	s.entries.Set(s.entriesCount.Load())
}

// updateSnapAge recomputes the snapshot-age gauge and returns the age
// (-1 when no snapshot exists).
func (s *Store) updateSnapAge() int64 {
	age := int64(-1)
	if last := s.lastSnapUnix.Load(); last > 0 {
		if age = time.Now().Unix() - last; age < 0 {
			age = 0
		}
	}
	s.snapAge.Set(age)
	return age
}

// cacheAdd inserts (or refreshes) an entry in the bounded LRU, evicting
// the least recently used entries beyond capacity.
func (s *Store) cacheAdd(e Entry) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if el, ok := s.cache[e.Key]; ok {
		el.Value = e
		s.lru.MoveToFront(el)
		return
	}
	s.cache[e.Key] = s.lru.PushFront(e)
	for s.lru.Len() > s.cacheCap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.cache, oldest.Value.(Entry).Key)
		s.evictions.Inc()
	}
}

// cacheRemove drops key from the LRU if present.
func (s *Store) cacheRemove(key string) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if el, ok := s.cache[key]; ok {
		s.lru.Remove(el)
		delete(s.cache, key)
	}
}
