// Package store is a persistent, content-addressed result store for
// deterministic VMAT workloads. Because every scenario is a pure
// function of its spec (the trial-runner guarantees bit-identical rows
// for any worker count), the canonical JSON encoding of a spec is a
// complete identity for its results: hashing it yields a key under
// which the rows can be cached forever, and a cache hit is provably
// equivalent to re-execution.
//
// Durability comes from an append-only journal (see journal.go): every
// Put appends one checksummed record and fsyncs before the entry
// becomes visible, so a crash can only ever lose the record being
// written, never a completed one. On Open the journal is replayed; a
// truncated or corrupt tail — the signature of a torn write — is
// logged, counted in metrics, and truncated away rather than treated as
// fatal.
//
// In memory, a compact key→offset index locates every record, and a
// bounded LRU of decoded entries fronts the disk so hot keys (a sweep
// re-reading its own cells, vmat-bench regenerating a figure) never
// touch the file. Hit/miss/eviction/corruption counters land in an
// internal/metrics registry.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/metrics"
)

// Metric names the store reports into its registry.
const (
	MetricHits      = "store_hits_total"
	MetricMisses    = "store_misses_total"
	MetricPuts      = "store_puts_total"
	MetricEvictions = "store_cache_evictions_total"
	MetricCorrupt   = "store_corrupt_records_total"
	MetricEntries   = "store_entries"
)

// Meta is the non-identity metadata stored alongside a result: how long
// the original execution took and which build produced it.
type Meta struct {
	DurationMicros int64  `json:"duration_us,omitempty"`
	Version        string `json:"version,omitempty"`
}

// Entry is one stored result: the content-address key, the kind of
// workload that produced it, its metadata, and the result value as raw
// JSON (decoded by typed helpers such as GetScenario).
type Entry struct {
	Key   string          `json:"key"`
	Kind  string          `json:"kind,omitempty"`
	Meta  Meta            `json:"meta"`
	Value json.RawMessage `json:"value"`
}

// Config configures a Store. Zero values pick serving defaults.
type Config struct {
	// CacheEntries bounds the in-memory LRU of decoded entries that
	// fronts the journal. Entries beyond the bound are evicted from
	// memory only — the journal keeps everything. Default 256.
	CacheEntries int
	// Metrics receives the store's counters. Nil creates a private
	// registry.
	Metrics *metrics.Registry
	// Log receives human-readable notices (journal recovery, corrupt
	// tails). Nil discards them.
	Log func(format string, args ...any)
}

// recordRef locates one journal record on disk.
type recordRef struct {
	off    int64
	length int64
}

// Store is a file-backed content-addressed result store. All methods
// are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	size  int64 // journal append offset
	index map[string]recordRef

	// Bounded decoded-entry cache: cache maps key -> list element whose
	// value is an Entry; order's front is the most recently used.
	cache    map[string]*list.Element
	order    *list.List
	cacheCap int

	log func(format string, args ...any)

	hits      *metrics.Counter
	misses    *metrics.Counter
	puts      *metrics.Counter
	evictions *metrics.Counter
	corrupt   *metrics.Counter
	entries   *metrics.Gauge
}

// Open opens (creating if needed) the store rooted at dir and replays
// its journal. A corrupt or truncated journal tail is recovered, logged
// via cfg.Log, and counted under MetricCorrupt; only I/O errors are
// fatal.
func Open(dir string, cfg Config) (*Store, error) {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, JournalName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open journal: %w", err)
	}
	s := &Store{
		f:         f,
		index:     map[string]recordRef{},
		cache:     map[string]*list.Element{},
		order:     list.New(),
		cacheCap:  cfg.CacheEntries,
		log:       cfg.Log,
		hits:      cfg.Metrics.Counter(MetricHits),
		misses:    cfg.Metrics.Counter(MetricMisses),
		puts:      cfg.Metrics.Counter(MetricPuts),
		evictions: cfg.Metrics.Counter(MetricEvictions),
		corrupt:   cfg.Metrics.Counter(MetricCorrupt),
		entries:   cfg.Metrics.Gauge(MetricEntries),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	s.entries.Set(int64(len(s.index)))
	return s, nil
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Has reports whether key is stored, without counting a hit or miss.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Get returns the entry stored under key. A miss returns ok=false with
// no error; the error return is reserved for I/O and decode failures on
// a record the index says exists.
func (s *Store) Get(key string) (Entry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.index[key]
	if !ok {
		s.misses.Inc()
		return Entry{}, false, nil
	}
	if el, ok := s.cache[key]; ok {
		s.order.MoveToFront(el)
		s.hits.Inc()
		return el.Value.(Entry), true, nil
	}
	buf := make([]byte, ref.length)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return Entry{}, false, fmt.Errorf("store: read record for %s: %w", key, err)
	}
	e, err := decodeRecord(buf)
	if err != nil {
		// The record passed its checksum at replay time, so this is
		// in-place damage, not a torn write; surface it loudly.
		s.corrupt.Inc()
		return Entry{}, false, fmt.Errorf("store: record for %s: %w", key, err)
	}
	s.cacheAdd(e)
	s.hits.Inc()
	return e, true, nil
}

// Put stores value (JSON-marshaled) under key. Puts are idempotent:
// storing an already-present key is a no-op, which makes concurrent
// write-back from several layers (job manager, sweep orchestrator)
// safe. The record is fsync'd before Put returns.
func (s *Store) Put(key, kind string, value any, meta Meta) error {
	s.mu.Lock()
	if _, ok := s.index[key]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("store: marshal value for %s: %w", key, err)
	}
	e := Entry{Key: key, Kind: kind, Meta: meta, Value: raw}
	rec, err := encodeRecord(&e)
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok { // lost the race; first write wins
		return nil
	}
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: append record: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync journal: %w", err)
	}
	s.index[key] = recordRef{off: s.size, length: int64(len(rec))}
	s.size += int64(len(rec))
	s.cacheAdd(e)
	s.puts.Inc()
	s.entries.Set(int64(len(s.index)))
	return nil
}

// Sync flushes the journal to stable storage. Puts already sync on
// every record; Sync exists for shutdown paths that want an explicit
// final barrier.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Close syncs and closes the journal. The store must not be used after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// cacheAdd inserts (or refreshes) an entry in the bounded LRU, evicting
// the least recently used entry beyond capacity. Callers hold s.mu.
func (s *Store) cacheAdd(e Entry) {
	if el, ok := s.cache[e.Key]; ok {
		el.Value = e
		s.order.MoveToFront(el)
		return
	}
	s.cache[e.Key] = s.order.PushFront(e)
	for s.order.Len() > s.cacheCap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.cache, oldest.Value.(Entry).Key)
		s.evictions.Inc()
	}
}
