package store

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func mustOpen(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	reg := metrics.New()
	s := mustOpen(t, t.TempDir(), Config{Metrics: reg})

	type payload struct {
		A int     `json:"a"`
		B float64 `json:"b"`
	}
	want := []payload{{1, 2.5}, {3, -0.125}}
	if err := s.Put("k1", "test", want, Meta{DurationMicros: 42, Version: "v1"}); err != nil {
		t.Fatalf("Put: %v", err)
	}

	e, ok, err := s.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get(k1) = ok=%v err=%v, want a hit", ok, err)
	}
	var got []payload
	if err := json.Unmarshal(e.Value, &got); err != nil {
		t.Fatalf("unmarshal value: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	if e.Meta.DurationMicros != 42 || e.Meta.Version != "v1" || e.Kind != "test" {
		t.Fatalf("metadata lost: %+v", e)
	}

	if _, ok, err := s.Get("absent"); ok || err != nil {
		t.Fatalf("Get(absent) = ok=%v err=%v, want a clean miss", ok, err)
	}
	if h, m := reg.Counter(MetricHits).Value(), reg.Counter(MetricMisses).Value(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1 and 1", h, m)
	}

	// Idempotent Put: re-storing the key keeps the first value.
	if err := s.Put("k1", "test", []payload{{9, 9}}, Meta{}); err != nil {
		t.Fatalf("idempotent Put: %v", err)
	}
	e2, _, _ := s.Get("k1")
	if string(e2.Value) != string(e.Value) {
		t.Fatalf("second Put overwrote the entry: %s vs %s", e2.Value, e.Value)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestReopenReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Config{})
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, "test", map[string]string{"k": k}, Meta{}); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reg := metrics.New()
	s2 := mustOpen(t, dir, Config{Metrics: reg})
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	for _, k := range []string{"a", "b", "c"} {
		e, ok, err := s2.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) after reopen: ok=%v err=%v", k, ok, err)
		}
		var m map[string]string
		if err := json.Unmarshal(e.Value, &m); err != nil || m["k"] != k {
			t.Fatalf("Get(%s) after reopen: value %s err %v", k, e.Value, err)
		}
	}
	if c := reg.Counter(MetricCorrupt).Value(); c != 0 {
		t.Fatalf("clean reopen counted %d corrupt records", c)
	}
}

// TestCacheEvictionBounded shrinks the LRU to two entries and checks
// that all keys remain readable (the journal backs the cache) while
// evictions are counted.
func TestCacheEvictionBounded(t *testing.T) {
	reg := metrics.New()
	s := mustOpen(t, t.TempDir(), Config{CacheEntries: 2, Metrics: reg})
	keys := []string{"a", "b", "c", "d"}
	for i, k := range keys {
		if err := s.Put(k, "test", i, Meta{}); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	if ev := reg.Counter(MetricEvictions).Value(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
	for i, k := range keys {
		e, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", k, ok, err)
		}
		var v int
		if json.Unmarshal(e.Value, &v); v != i {
			t.Fatalf("Get(%s) = %d, want %d", k, v, i)
		}
	}
	if len(s.cache) != 2 || s.lru.Len() != 2 {
		t.Fatalf("cache holds %d/%d entries, want bound 2", len(s.cache), s.lru.Len())
	}
}

// TestScenarioKeyIdentity checks the two sides of the content address:
// execution-only knobs and normalization must not move the key, while
// every result-affecting field must.
func TestScenarioKeyIdentity(t *testing.T) {
	base := experiments.DefaultScenario()
	k0, err := ScenarioKey(base)
	if err != nil {
		t.Fatalf("ScenarioKey: %v", err)
	}

	// Workers is invisible in the rows, so it must be invisible in the key.
	w := base
	w.Workers = 8
	if kw, _ := ScenarioKey(w); kw != k0 {
		t.Fatalf("worker count moved the key: %s vs %s", kw, k0)
	}

	// Defaulted and explicit encodings of the same scenario collide.
	expl := base
	expl.Synopses = 100
	if ke, _ := ScenarioKey(expl); ke != k0 {
		t.Fatalf("normalization-equal specs got different keys")
	}

	// Result-affecting fields move the key: seed, faults, ARQ.
	seeded := base
	seeded.Seed++
	if ks, _ := ScenarioKey(seeded); ks == k0 {
		t.Fatalf("seed change did not move the key")
	}
	faulty := base
	faulty.Faults = &faults.Spec{CrashProb: 0.01}
	faulty.ARQ = &simnet.ARQConfig{MaxRetries: 2}
	if kf, _ := ScenarioKey(faulty); kf == k0 {
		t.Fatalf("faults+ARQ did not move the key")
	}
}

func TestScenarioPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Config{})
	cfg := experiments.DefaultScenario()
	cfg.N = 30
	cfg.Trials = 3
	rows, err := experiments.RunScenario(cfg)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if err := s.PutScenario(cfg, rows, Meta{Version: "test"}); err != nil {
		t.Fatalf("PutScenario: %v", err)
	}
	got, ok, err := s.GetScenario(cfg)
	if err != nil || !ok {
		t.Fatalf("GetScenario: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("stored rows differ:\n%+v\nvs\n%+v", got, rows)
	}
	// A different worker count is the same content address.
	cfg.Workers = 4
	if _, ok, _ := s.GetScenario(cfg); !ok {
		t.Fatalf("GetScenario missed after changing only Workers")
	}
}
