package store

// This file is the control-plane write-ahead log: a second append-only
// file in the store directory, sharing the journal's CRC'd record
// framing, that records sweep and cluster state transitions instead of
// results. The result journal is the authority on *what has been
// computed*; the WAL is the authority on *what was promised* — which
// sweeps are open, which units were enqueued, which completed.
// Replaying both on startup lets a restarted server resume every open
// sweep with zero operator action: stored cells are skipped, unrecorded
// ones re-enqueued, and first-write-wins Put makes any duplicate
// execution harmless.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/metrics"
)

// WALName is the control-plane write-ahead log inside the store
// directory. Exported so operators (and tests) can find it.
const WALName = "control.wal"

// walMagic marks control-plane records in the shared framing.
var walMagic = [4]byte{'V', 'M', 'C', '1'}

// WAL record kinds. Each record is one control-plane state transition;
// the set is deliberately small enough to replay by a single pass.
const (
	RecSweepOpened   = "sweep-opened"   // a sweep was accepted (carries its grid)
	RecUnitEnqueued  = "unit-enqueued"  // a cell/scenario entered the execution path
	RecUnitCompleted = "unit-completed" // a cell/scenario reached a terminal outcome
	RecSweepClosed   = "sweep-closed"   // the sweep reached done or cancelled
)

// WAL metric names.
const (
	MetricWALAppends = "store_wal_appends_total"
	MetricWALRecords = "store_wal_records"
	MetricWALCorrupt = "store_wal_corrupt_records_total"
)

// WALRecord is one control-plane state transition. Which fields are
// meaningful depends on Kind: sweep-opened carries Sweep/GridKey/Grid;
// unit records carry Key (a content address) and, for sweep cells, the
// owning Sweep; cluster-audit unit records (from the coordinator) leave
// Sweep empty; sweep-closed carries Sweep and Status.
type WALRecord struct {
	Kind    string          `json:"kind"`
	Sweep   string          `json:"sweep,omitempty"`
	Key     string          `json:"key,omitempty"`
	GridKey string          `json:"grid_key,omitempty"`
	Grid    json.RawMessage `json:"grid,omitempty"`
	Source  string          `json:"source,omitempty"`
	Error   string          `json:"error,omitempty"`
	Status  string          `json:"status,omitempty"`
}

// WALConfig configures a WAL. Zero values are usable defaults.
type WALConfig struct {
	// Metrics receives append/corruption counters. Nil creates a
	// private registry.
	Metrics *metrics.Registry
	// Log receives recovery notices. Nil discards them.
	Log func(format string, args ...any)
}

// WAL is the append-only control-plane log. All methods are safe for
// concurrent use.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64
	n    int64 // live record count, mirrored into MetricWALRecords

	log     func(format string, args ...any)
	appends *metrics.Counter
	corrupt *metrics.Counter
	records *metrics.Gauge
}

// OpenWAL opens (creating if needed) the control-plane WAL in dir and
// replays it, returning every complete, checksummed record in append
// order. A torn or corrupt tail — the signature of a crash mid-append —
// is logged, counted under MetricWALCorrupt, and truncated away exactly
// like the result journal's recovery; only I/O errors are fatal.
func OpenWAL(dir string, cfg WALConfig) (*WAL, []WALRecord, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open control WAL: %w", err)
	}
	w := &WAL{
		f:       f,
		path:    path,
		log:     cfg.Log,
		appends: cfg.Metrics.Counter(MetricWALAppends),
		corrupt: cfg.Metrics.Counter(MetricWALCorrupt),
		records: cfg.Metrics.Gauge(MetricWALRecords),
	}
	var recs []WALRecord
	off, reason, err := scanFrames(f, walMagic, func(_ int64, payload []byte) error {
		var r WALRecord
		if jerr := json.Unmarshal(payload, &r); jerr != nil || r.Kind == "" {
			return errors.New("undecodable record payload")
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: replay control WAL: %w", err)
	}
	if reason != "" {
		w.corrupt.Inc()
		w.log("store: control WAL corrupt at offset %d (%s); recovering %d complete records and truncating", off, reason, len(recs))
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncate corrupt WAL tail: %w", err)
		}
	}
	w.size = off
	w.n = int64(len(recs))
	w.records.Set(w.n)
	return w, recs, nil
}

// Append writes the records as one batch with a single fsync before
// returning, so a control-plane transition is durable before the state
// it promises becomes externally visible. An empty batch is a no-op.
func (w *WAL) Append(recs ...WALRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for i := range recs {
		payload, err := json.Marshal(&recs[i])
		if err != nil {
			return fmt.Errorf("store: marshal WAL record (%s): %w", recs[i].Kind, err)
		}
		frame, err := encodeFrame(walMagic, payload)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("store: control WAL is closed")
	}
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return fmt.Errorf("store: append WAL records: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync control WAL: %w", err)
	}
	w.size += int64(len(buf))
	w.n += int64(len(recs))
	w.appends.Add(int64(len(recs)))
	w.records.Set(w.n)
	return nil
}

// Compact atomically replaces the WAL's contents with keep. Recovery
// calls it after replay so records from closed sweeps and finished
// units of prior incarnations stop being replayed on every startup; the
// rewrite goes through a temp file and rename, so a crash mid-compact
// leaves either the old log or the new one, never a mix.
func (w *WAL) Compact(keep []WALRecord) error {
	var buf []byte
	for i := range keep {
		payload, err := json.Marshal(&keep[i])
		if err != nil {
			return fmt.Errorf("store: marshal WAL record (%s): %w", keep[i].Kind, err)
		}
		frame, err := encodeFrame(walMagic, payload)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("store: control WAL is closed")
	}
	tmpPath := w.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create WAL compaction file: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: write compacted WAL: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: sync compacted WAL: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: swap compacted WAL: %w", err)
	}
	// The open handle follows the rename (same inode), so tmp becomes
	// the live file and the old one is released.
	w.f.Close()
	w.f = tmp
	w.size = int64(len(buf))
	w.n = int64(len(keep))
	w.records.Set(w.n)
	return nil
}

// Sync flushes the WAL. Appends already sync per batch; Sync exists for
// shutdown paths wanting an explicit final barrier.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the WAL. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
