package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records, want 0", len(recs))
	}
	want := []WALRecord{
		{Kind: RecSweepOpened, Sweep: "s000001", GridKey: "g1", Grid: json.RawMessage(`{"n":[30]}`)},
		{Kind: RecUnitEnqueued, Sweep: "s000001", Key: "k1"},
		{Kind: RecUnitCompleted, Sweep: "s000001", Key: "k1", Source: "executed"},
		{Kind: RecSweepClosed, Sweep: "s000001", Status: "done"},
	}
	if err := w.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(want[1:]...); err != nil { // batched append
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Sweep != want[i].Sweep ||
			got[i].Key != want[i].Key || got[i].Source != want[i].Source ||
			got[i].Status != want[i].Status || got[i].GridKey != want[i].GridKey {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWALTornTailTruncatedAndCounted(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(WALRecord{Kind: RecUnitEnqueued, Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-record, as a crash during an append would.
	path := filepath.Join(dir, WALName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	w2, recs, err := OpenWAL(dir, WALConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 2 {
		t.Fatalf("torn WAL replayed %d records, want 2", len(recs))
	}
	if got := reg.Counter(MetricWALCorrupt).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricWALCorrupt, got)
	}
	// Appends continue from the clean boundary.
	if err := w2.Append(WALRecord{Kind: RecUnitCompleted, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs, err = OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("post-recovery WAL replayed %d records, want 3", len(recs))
	}
}

func TestWALCompactKeepsOnlyGivenRecords(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(WALRecord{Kind: RecUnitEnqueued, Key: "old"}); err != nil {
			t.Fatal(err)
		}
	}
	keep := []WALRecord{
		{Kind: RecSweepOpened, Sweep: "s000002", GridKey: "g2"},
		{Kind: RecUnitCompleted, Sweep: "s000002", Key: "k", Source: "failed", Error: "boom"},
	}
	if err := w.Compact(keep); err != nil {
		t.Fatal(err)
	}
	// The handle stays live across the rename: appends keep working.
	if err := w.Append(WALRecord{Kind: RecUnitEnqueued, Sweep: "s000002", Key: "k2"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("compacted WAL replayed %d records, want 3", len(recs))
	}
	if recs[0].Kind != RecSweepOpened || recs[1].Error != "boom" || recs[2].Key != "k2" {
		t.Fatalf("compacted records wrong: %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, WALName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("compaction temp file left behind (stat err %v)", err)
	}
}

func TestWALHostileBytesNeverPanic(t *testing.T) {
	// A WAL full of garbage must replay to zero records, count the
	// corruption, and leave the file usable.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALName), []byte("not a wal at all, definitely hostile"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	w, recs, err := OpenWAL(dir, WALConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("hostile WAL replayed %d records, want 0", len(recs))
	}
	if got := reg.Counter(MetricWALCorrupt).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricWALCorrupt, got)
	}
	if err := w.Append(WALRecord{Kind: RecSweepOpened, Sweep: "s000001"}); err != nil {
		t.Fatal(err)
	}
}
