package sweep

import (
	"encoding/csv"
	"io"
	"strconv"
)

// csvHeader is the flattened export schema: one line per trial per
// cell, the cell's scenario parameters repeated on every line so the
// file loads straight into a dataframe with no joins. The schema is
// deliberately free of provenance (no store-vs-executed column): a
// sweep's CSV is a pure function of its grid, so a run that survived a
// crash-and-restart exports bytes identical to an undisturbed one —
// the property the chaos harness asserts. Provenance lives in the JSON
// export's per-cell source field.
var csvHeader = []string{
	"cell", "n", "topology", "query", "attack", "malicious",
	"multipath", "loss_rate", "theta", "synopses", "trials", "seed",
	"trial", "outcome", "answered", "answer", "slots", "flooding_rounds",
	"predicate_tests", "revoked_keys", "revoked_nodes", "total_bytes",
	"max_node_bytes", "partial", "unreachable", "retransmits",
}

// WriteCSV renders cell results as CSV. Cells that have not produced
// rows (pending or failed) contribute no lines; the JSON export carries
// their status instead.
func WriteCSV(w io.Writer, results []CellResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, c := range results {
		s := c.Spec
		for _, r := range c.Rows {
			rec := []string{
				strconv.Itoa(c.Index),
				strconv.Itoa(s.N), s.Topology, s.Query, s.Attack,
				strconv.Itoa(s.Malicious), strconv.FormatBool(s.Multipath),
				formatFloat(s.LossRate), strconv.Itoa(s.Theta),
				strconv.Itoa(s.Synopses), strconv.Itoa(s.Trials),
				strconv.FormatUint(s.Seed, 10),
				strconv.Itoa(r.Trial), r.Outcome, strconv.FormatBool(r.Answered),
				formatFloat(r.Answer), strconv.Itoa(r.Slots),
				formatFloat(r.FloodingRounds), strconv.Itoa(r.PredicateTests),
				strconv.Itoa(r.RevokedKeys), strconv.Itoa(r.RevokedNodes),
				strconv.FormatInt(r.TotalBytes, 10), strconv.FormatInt(r.MaxNodeBytes, 10),
				strconv.FormatBool(r.Partial), strconv.Itoa(r.Unreachable),
				strconv.FormatInt(r.Retransmits, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
