package sweep

import (
	"encoding/json"
	"testing"
)

// FuzzGridDecodeExpand hammers the path recovery trusts: a grid stored
// in a sweep-opened WAL record is attacker-distance bytes after a
// crash, and replay decodes and expands it. Hostile bytes must error
// (the sweep is skipped with a log line), never panic, and anything
// that does expand must produce validated, deduplicated, capped cells.
func FuzzGridDecodeExpand(f *testing.F) {
	f.Add([]byte(`{"n":[20,30],"attack":["none","drop"],"trials":2,"seed":7}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"n":[0]}`))
	f.Add([]byte(`{"n":[-5],"theta":[999999]}`))
	f.Add([]byte(`{"max_cells":-1}`))
	f.Add([]byte(`{"loss_rate":[1e308,-1e308],"malicious":[1000000]}`))
	f.Add([]byte(`{"attack":["frobnicate"],"topology":[""]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, b []byte) {
		var g Grid
		if err := json.Unmarshal(b, &g); err != nil {
			return
		}
		cells, err := g.Expand()
		if err != nil {
			return
		}
		if len(cells) == 0 || len(cells) > MaxCellsLimit {
			t.Fatalf("expansion accepted %d cells", len(cells))
		}
		seen := map[string]bool{}
		for _, c := range cells {
			if c.Key == "" {
				t.Fatalf("cell with empty content address: %+v", c.Spec)
			}
			if seen[c.Key] {
				t.Fatalf("duplicate cell key %s survived expansion", c.Key)
			}
			seen[c.Key] = true
			if verr := c.Spec.Validate(); verr != nil {
				t.Fatalf("expansion produced invalid cell: %v", verr)
			}
		}
		// The content address is stable: the same cells hash the same.
		if cellsKey(cells) != cellsKey(cells) {
			t.Fatalf("cellsKey not deterministic")
		}
	})
}
