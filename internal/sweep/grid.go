// Package sweep is the parameter-sweep orchestrator: it expands a JSON
// grid spec — lists of values per scenario field — into the cross
// product of individual scenario cells and feeds them through the
// service job manager, with a result-store lookup before execution and
// write-back after. This is exactly the paper's evaluation shape
// (Section IX re-runs a grid over n, topology, attack, θ, and loss),
// turned into a first-class server workload: progress is tracked per
// sweep, results export as JSON or CSV, and because every completed
// cell is persisted in the content-addressed store, a killed server
// resumes a resubmitted sweep by skipping everything already done.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/store"
)

// DefaultMaxCells caps a grid expansion unless the spec raises it, and
// MaxCellsLimit is the ceiling no spec may exceed: cross products grow
// fast, and an unbounded one is a denial-of-service on the worker pool.
const (
	DefaultMaxCells = 4096
	MaxCellsLimit   = 65536
)

// Grid is a sweep specification: each list field enumerates values for
// the corresponding experiments.ScenarioConfig field, and the expansion
// is their cross product (in field order: n outermost, synopses
// innermost). Empty lists default to a single neutral value. Scalar
// fields (trials, seed, faults, ARQ, max slots) are shared by every
// cell — vary what the paper varies, pin the rest.
type Grid struct {
	N         []int     `json:"n,omitempty"`
	Topology  []string  `json:"topology,omitempty"`
	Query     []string  `json:"query,omitempty"`
	Attack    []string  `json:"attack,omitempty"`
	Malicious []int     `json:"malicious,omitempty"`
	Multipath []bool    `json:"multipath,omitempty"`
	LossRate  []float64 `json:"loss_rate,omitempty"`
	Theta     []int     `json:"theta,omitempty"`
	Synopses  []int     `json:"synopses,omitempty"`

	// Trials, Seed, and Workers apply to every cell. Zero trials means
	// 20; zero seed means 2011; zero workers means all cores.
	Trials  int    `json:"trials,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`

	// Faults/ARQ/MaxSlots configure fault injection identically for
	// every cell (they are part of each cell's content address).
	Faults   *faults.Spec      `json:"faults,omitempty"`
	ARQ      *simnet.ARQConfig `json:"arq,omitempty"`
	MaxSlots int               `json:"max_slots,omitempty"`

	// MaxCells is the explicit expansion cap. Zero means
	// DefaultMaxCells; values beyond MaxCellsLimit are rejected.
	MaxCells int `json:"max_cells,omitempty"`
}

// Cell is one expanded grid point: a fully normalized scenario spec and
// its content address in the result store.
type Cell struct {
	Spec experiments.ScenarioConfig
	Key  string
}

func orInts(v []int, def int) []int {
	if len(v) == 0 {
		return []int{def}
	}
	return v
}

func orStrings(v []string, def string) []string {
	if len(v) == 0 {
		return []string{def}
	}
	return v
}

// maliciousFor returns the malicious-count dimension for one attack
// value: "none" has no attackers by definition, and attacked cells
// default to a single compromised sensor when the grid doesn't sweep
// the count.
func (g *Grid) maliciousFor(attack string) []int {
	if attack == "none" {
		return []int{0}
	}
	return orInts(g.Malicious, 1)
}

// cap returns the effective expansion cap.
func (g *Grid) cap() int {
	if g.MaxCells == 0 {
		return DefaultMaxCells
	}
	return g.MaxCells
}

// size computes the exact expansion size without materializing it, so
// an over-cap grid is rejected in O(attacks) time.
func (g *Grid) size() int {
	perAttack := 0
	for _, a := range orStrings(g.Attack, "none") {
		perAttack += len(g.maliciousFor(a))
	}
	return len(orInts(g.N, 60)) * len(orStrings(g.Topology, "geometric")) *
		len(orStrings(g.Query, "min")) * perAttack *
		maxOf(len(g.Multipath), 1) * maxOf(len(g.LossRate), 1) *
		maxOf(len(g.Theta), 1) * maxOf(len(g.Synopses), 1)
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Expand materializes the grid into validated cells, deduplicated by
// content address (normalization can collapse distinct grid points —
// e.g. attack "none" ignores the malicious dimension — and the second
// occurrence would only ever be a guaranteed cache hit). Any invalid
// cell fails the whole expansion: a sweep that silently dropped cells
// would report misleading coverage.
func (g *Grid) Expand() ([]Cell, error) {
	if g.MaxCells < 0 || g.MaxCells > MaxCellsLimit {
		return nil, fmt.Errorf("sweep: max_cells %d out of range [0, %d]", g.MaxCells, MaxCellsLimit)
	}
	if total := g.size(); total > g.cap() {
		return nil, fmt.Errorf("sweep: grid expands to %d cells, exceeding the cap of %d (raise max_cells up to %d or shrink the grid)",
			total, g.cap(), MaxCellsLimit)
	}
	trials := g.Trials
	if trials == 0 {
		trials = 20
	}
	seed := g.Seed
	if seed == 0 {
		seed = 2011
	}

	var cells []Cell
	seen := map[string]bool{}
	multis := g.Multipath
	if len(multis) == 0 {
		multis = []bool{false}
	}
	losses := g.LossRate
	if len(losses) == 0 {
		losses = []float64{0}
	}
	for _, n := range orInts(g.N, 60) {
		for _, topo := range orStrings(g.Topology, "geometric") {
			for _, query := range orStrings(g.Query, "min") {
				for _, attack := range orStrings(g.Attack, "none") {
					for _, mal := range g.maliciousFor(attack) {
						for _, multi := range multis {
							for _, loss := range losses {
								for _, theta := range orInts(g.Theta, 0) {
									for _, syn := range orInts(g.Synopses, 100) {
										spec := experiments.ScenarioConfig{
											N: n, Topology: topo, Query: query,
											Attack: attack, Malicious: mal,
											Multipath: multi, LossRate: loss,
											Theta: theta, Synopses: syn,
											Trials: trials, Seed: seed, Workers: g.Workers,
											Faults: g.Faults, ARQ: g.ARQ, MaxSlots: g.MaxSlots,
										}
										spec.Normalize()
										if err := spec.Validate(); err != nil {
											return nil, fmt.Errorf("sweep: cell %d: %w", len(cells), err)
										}
										key, err := store.ScenarioKey(spec)
										if err != nil {
											return nil, fmt.Errorf("sweep: cell %d: %w", len(cells), err)
										}
										if seen[key] {
											continue
										}
										seen[key] = true
										cells = append(cells, Cell{Spec: spec, Key: key})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("sweep: grid expands to no cells")
	}
	return cells, nil
}

// cellsKey is a sweep's content address: the hash of its ordered
// expanded cell keys. Two grids that expand to the same cells — however
// differently they were spelled — are the same sweep, which is what
// lets a resubmission attach to the live sweep instead of
// double-enqueueing, and a recovered sweep be matched across restarts.
func cellsKey(cells []Cell) string {
	h := sha256.New()
	for _, c := range cells {
		h.Write([]byte(c.Key))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
