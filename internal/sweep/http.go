package sweep

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/service"
	"repro/internal/tenant"
)

// maxGridBytes bounds a sweep-submission body.
const maxGridBytes = 1 << 20

// Register mounts the sweep API on mux, instrumented into the
// manager's registry with the same per-route counters/histograms as
// the job API:
//
//	POST   /v1/sweeps               submit a grid (202; 400 invalid/over cap, 503 draining)
//	GET    /v1/sweeps/{id}          progress counts (executed/cached/failed/pending)
//	GET    /v1/sweeps/{id}/results  full results; ?format=csv for one line per trial
//	DELETE /v1/sweeps/{id}          stop submitting further cells
func Register(mux *http.ServeMux, m *Manager) {
	h := &api{m: m}
	reg := m.Registry()
	// The sweep routes sit behind the same front door as the job API:
	// service.WithTenant authenticates against the shared controller.
	sm := m.cfg.Service
	mux.HandleFunc("POST /v1/sweeps", service.Instrument(reg, "POST /v1/sweeps", service.WithTenant(sm, h.submit)))
	mux.HandleFunc("GET /v1/sweeps/{id}", service.Instrument(reg, "GET /v1/sweeps/{id}", service.WithTenant(sm, h.get)))
	mux.HandleFunc("GET /v1/sweeps/{id}/results", service.Instrument(reg, "GET /v1/sweeps/{id}/results", service.WithTenant(sm, h.results)))
	mux.HandleFunc("DELETE /v1/sweeps/{id}", service.Instrument(reg, "DELETE /v1/sweeps/{id}", service.WithTenant(sm, h.cancel)))
}

type api struct {
	m *Manager
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (h *api) submit(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	var grid Grid
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxGridBytes))
	// As with job specs: a typo'd field would silently sweep the wrong
	// grid, so unknown keys are a hard 400.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&grid); err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep grid: "+err.Error())
		return
	}
	sw, err := h.m.SubmitAs(t, grid)
	var adm *tenant.AdmissionError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id":     sw.ID(),
			"status": sw.Status(),
			"cells":  len(sw.cells),
		})
	case errors.As(err, &adm):
		w.Header().Set("Retry-After", adm.RetryAfterHeader())
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// lookup resolves the path's sweep and enforces read authorization:
// sweep IDs are sequential, so a sweep the tenant may not see reads as
// absent (404) rather than confirming it exists. Readable are the
// tenant's own sweeps, sweeps it attached to by resubmitting the
// identical grid, and — for admin tenants — everyone's.
func (h *api) lookup(r *http.Request, t *tenant.Tenant) (*Sweep, bool) {
	sw, ok := h.m.Get(r.PathValue("id"))
	if !ok || !(t.Admin() || sw.Accessible(t.ID())) {
		return nil, false
	}
	return sw, true
}

func (h *api) get(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	sw, ok := h.lookup(r, t)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, sw.View(false))
}

func (h *api) results(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	sw, ok := h.lookup(r, t)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, sw.View(true))
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(http.StatusOK)
		_ = WriteCSV(w, sw.View(true).Results)
	default:
		writeError(w, http.StatusBadRequest, "unknown format "+format+" (want json or csv)")
	}
}

// cancel is owner-or-admin only: an attached tenant may read the
// shared sweep but must not be able to kill the owner's run by having
// resubmitted the same grid.
func (h *api) cancel(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	if sw, ok := h.m.Get(r.PathValue("id")); !ok || !t.CanAccess(sw.Tenant()) {
		writeError(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	sw, err := h.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     sw.ID(),
		"status": sw.Status(),
	})
}
