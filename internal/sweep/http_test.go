package sweep_test

import (
	"encoding/csv"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/sweep"
)

// newTestServer composes the root mux exactly like cmd/vmat-server:
// the job API handler at "/", sweep routes registered on top.
func newTestServer(t *testing.T) (*httptest.Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	st, err := store.Open(t.TempDir(), store.Config{Metrics: reg})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	svc := service.New(service.Config{Workers: 2, Metrics: reg, Store: st})
	sm := sweep.NewManager(sweep.Config{Service: svc, Store: st, Metrics: reg})

	root := http.NewServeMux()
	root.Handle("/", service.NewHandler(svc, "test", nil, nil))
	sweep.Register(root, sm)
	srv := httptest.NewServer(root)
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv, reg
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, m
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func TestSweepHTTPLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)

	// Submit a 4-cell grid.
	resp, body := postJSON(t, srv.URL+"/v1/sweeps",
		`{"n": [20, 30], "attack": ["none", "drop"], "trials": 2, "seed": 7, "workers": 2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	if id == "" || body["cells"].(float64) != 4 {
		t.Fatalf("submit response: %v", body)
	}

	// Poll progress until done.
	var view sweep.View
	deadline := time.Now().Add(60 * time.Second)
	for {
		if r := getJSON(t, srv.URL+"/v1/sweeps/"+id, &view); r.StatusCode != http.StatusOK {
			t.Fatalf("get sweep: %d", r.StatusCode)
		}
		if view.Status != sweep.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.Status != sweep.StatusDone || view.Executed != 4 || len(view.Results) != 0 {
		t.Fatalf("progress view: %+v", view)
	}

	// JSON results carry rows for every cell.
	var full sweep.View
	getJSON(t, srv.URL+"/v1/sweeps/"+id+"/results", &full)
	if len(full.Results) != 4 {
		t.Fatalf("results: %d cells", len(full.Results))
	}
	for _, c := range full.Results {
		if len(c.Rows) != 2 {
			t.Fatalf("cell %d has %d rows", c.Index, len(c.Rows))
		}
	}

	// CSV export: header + one line per trial per cell.
	cresp, err := http.Get(srv.URL + "/v1/sweeps/" + id + "/results?format=csv")
	if err != nil {
		t.Fatalf("GET csv: %v", err)
	}
	defer cresp.Body.Close()
	if ct := cresp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("csv content type %q", ct)
	}
	recs, err := csv.NewReader(cresp.Body).ReadAll()
	if err != nil {
		t.Fatalf("parse csv: %v", err)
	}
	if len(recs) != 1+4*2 {
		t.Fatalf("csv has %d lines, want 9", len(recs))
	}
	if recs[0][0] != "cell" || recs[0][1] != "n" {
		t.Fatalf("csv shape: %v / %v", recs[0], recs[1])
	}
	// No provenance column: the CSV must be a pure function of the grid
	// so crash-recovered runs export bit-identical bytes.
	for _, col := range recs[0] {
		if col == "source" {
			t.Fatalf("csv header leaks provenance: %v", recs[0])
		}
	}

	// Resubmitting the identical grid is served from the store.
	_, body2 := postJSON(t, srv.URL+"/v1/sweeps",
		`{"n": [20, 30], "attack": ["none", "drop"], "trials": 2, "seed": 7, "workers": 2}`)
	id2 := body2["id"].(string)
	for {
		getJSON(t, srv.URL+"/v1/sweeps/"+id2, &view)
		if view.Status != sweep.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cached sweep stuck: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.Cached != 4 || view.Executed != 0 {
		t.Fatalf("resubmitted sweep not cached: %+v", view)
	}
}

func TestSweepHTTPRejections(t *testing.T) {
	srv, _ := newTestServer(t)

	// Unknown field.
	resp, body := postJSON(t, srv.URL+"/v1/sweeps", `{"nodes": [20]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %v", resp.StatusCode, body)
	}
	// Over the default cap: 8 x 30 x 18 = 4320 cells.
	over := `{"n": [20,30,40,50,60,70,80,90],
		"theta": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30],
		"loss_rate": [0.01,0.02,0.03,0.04,0.05,0.06,0.07,0.08,0.09,0.1,0.11,0.12,0.13,0.14,0.15,0.16,0.17,0.18]}`
	resp, body = postJSON(t, srv.URL+"/v1/sweeps", over)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body["error"].(string), "cap") {
		t.Fatalf("over-cap grid: %d %v", resp.StatusCode, body)
	}
	// Invalid cell value.
	resp, body = postJSON(t, srv.URL+"/v1/sweeps", `{"attack": ["frobnicate"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid attack: %d %v", resp.StatusCode, body)
	}
	// Unknown sweep IDs.
	for _, path := range []string{"/v1/sweeps/s999999", "/v1/sweeps/s999999/results"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d", path, r.StatusCode)
		}
	}
	// Unknown format.
	resp2, body2 := postJSON(t, srv.URL+"/v1/sweeps", `{"n": [20], "trials": 1, "workers": 1}`)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp2.StatusCode, body2)
	}
	fr, err := http.Get(srv.URL + "/v1/sweeps/" + body2["id"].(string) + "/results?format=xml")
	if err != nil {
		t.Fatalf("GET xml: %v", err)
	}
	fr.Body.Close()
	if fr.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %d", fr.StatusCode)
	}
}

func TestSweepHTTPCancel(t *testing.T) {
	srv, _ := newTestServer(t)
	_, body := postJSON(t, srv.URL+"/v1/sweeps",
		`{"n": [40, 50, 60, 70], "attack": ["drop"], "trials": 8, "workers": 1}`)
	id := body["id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	var view sweep.View
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, srv.URL+"/v1/sweeps/"+id, &view)
		if view.Status != sweep.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled sweep stuck: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.Status != sweep.StatusCancelled && view.Status != sweep.StatusDone {
		t.Fatalf("cancelled sweep status %s", view.Status)
	}
}
