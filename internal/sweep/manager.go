package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Status is a sweep's lifecycle state. A sweep is "done" once every
// cell reached a terminal outcome (including failures — the failed
// count says how many); "interrupted" means a drain stopped submission
// with cells still pending, and the sweep resumes from the store when
// an identical grid is resubmitted.
type Status string

const (
	StatusRunning     Status = "running"
	StatusDone        Status = "done"
	StatusInterrupted Status = "interrupted"
	StatusCancelled   Status = "cancelled"
)

func (s Status) terminal() bool { return s != StatusRunning }

// Errors returned by Submit/Get. HTTP maps ErrDraining to 503 and
// ErrNotFound to 404; expansion errors map to 400.
var (
	ErrDraining = errors.New("sweep: manager is draining, not accepting sweeps")
	ErrNotFound = errors.New("sweep: no such sweep")
)

// Metric names. Cell outcomes carry a source label, e.g.
// `sweep_cells_total{source="store"}`.
const (
	MetricSweepsSubmitted = "sweep_sweeps_submitted_total"
	MetricSweepsActive    = "sweep_sweeps_active"
	MetricCells           = "sweep_cells_total"
	// MetricSweepsAttached counts resubmissions of a grid identical (by
	// content address) to an already-open sweep, which attach to the
	// live sweep instead of double-enqueueing its cells.
	MetricSweepsAttached = "sweep_sweeps_attached_total"
	// MetricSweepsResumed counts sweeps resumed automatically from the
	// control-plane WAL after a restart.
	MetricSweepsResumed = "sweep_resumed_total"
)

// Crash-recovery metric names (reported by Recover; the store_ prefix
// groups them with the WAL/journal counters they summarize).
const (
	MetricRecoveryReplayed   = "store_recovery_replayed_records_total"
	MetricRecoveryReenqueued = "store_recovery_reenqueued_units_total"
	MetricRecoveryWallTime   = "store_recovery_wall_time_us"
)

// Cell sources recorded in results and metrics.
const (
	SourceExecuted = "executed" // ran through the service worker pool
	SourceStore    = "store"    // served from the persistent result store
	SourceFailed   = "failed"   // executed and failed
)

// Config configures a sweep Manager.
type Config struct {
	// Service executes cells that miss the store. Required.
	Service *service.Manager
	// Store, when non-nil, is consulted before submitting each cell and
	// written back after each execution, making sweeps restartable: a
	// resubmitted grid skips every cell the journal already holds.
	Store *store.Store
	// Metrics receives sweep counters. Nil creates a private registry.
	Metrics *metrics.Registry
	// Log receives progress lines (expansion size, completion). Nil
	// discards them.
	Log func(format string, args ...any)
	// MaxInFlight bounds how many cells of one sweep are in the service
	// queue/worker pool at once, so a single sweep cannot monopolize
	// admission. Default 8.
	MaxInFlight int
	// Retain bounds how many terminal sweeps stay retrievable. Default 64.
	Retain int
	// Version stamps sweep write-backs.
	Version string
	// WAL, when non-nil, makes sweeps crash-durable: lifecycle
	// transitions (sweep-opened, unit-enqueued, unit-completed,
	// sweep-closed) are appended to the control-plane write-ahead log,
	// and a server restarted over the same data dir resumes every open
	// sweep automatically via Recover.
	WAL *store.WAL
	// WALRecords is the replayed log handed to NewManager at startup.
	// When non-empty, the owner MUST call Recover (normally in a
	// goroutine, once the listener is up): submissions block until
	// recovery has rebuilt the open sweeps, so an early resubmission
	// cannot race a resuming sweep into a duplicate.
	WALRecords []store.WALRecord
}

// CellResult is one cell's outcome inside a sweep.
type CellResult struct {
	Index  int                        `json:"index"`
	Key    string                     `json:"key"`
	Source string                     `json:"source,omitempty"` // "", executed, store, failed
	Error  string                     `json:"error,omitempty"`
	Spec   experiments.ScenarioConfig `json:"spec"`
	Rows   []experiments.ScenarioRow  `json:"rows,omitempty"`
}

// Sweep is one submitted grid expansion working its way through the
// service.
type Sweep struct {
	id      string
	grid    Grid
	cells   []Cell
	gridKey string // content address over the ordered expanded cell keys
	owner   *tenant.Tenant
	done    chan struct{}

	stopOnce sync.Once
	stopped  chan struct{}

	mu        sync.Mutex
	status    Status
	reason    string
	executed  int
	cached    int
	failed    int
	results   []CellResult
	attached  map[string]bool // tenant IDs granted read access by attaching
	submitted time.Time
	finished  time.Time
}

// ID returns the sweep identifier.
func (s *Sweep) ID() string { return s.id }

// Tenant returns the owning tenant's ID.
func (s *Sweep) Tenant() string { return s.owner.ID() }

// grantAccess records that tenant id attached to this sweep by
// resubmitting the identical grid, so it may poll the live sweep it
// was handed back.
func (s *Sweep) grantAccess(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attached == nil {
		s.attached = map[string]bool{}
	}
	s.attached[id] = true
}

// Accessible reports whether tenant id may read the sweep: its owner,
// or a tenant that attached to it. Attachment requires submitting the
// full identical grid, so read access leaks nothing the attacher did
// not already hold; cancel stays owner-only (see the HTTP layer).
func (s *Sweep) Accessible(id string) bool {
	if id == s.owner.ID() {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attached[id]
}

// Done is closed when the sweep reaches a terminal status.
func (s *Sweep) Done() <-chan struct{} { return s.done }

// Status returns the sweep's current state.
func (s *Sweep) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

// stop requests the run loop to stop submitting cells. The first
// reason wins.
func (s *Sweep) stop(status Status, reason string) {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		if !s.status.terminal() {
			s.status = status
			s.reason = reason
		}
		s.mu.Unlock()
		close(s.stopped)
	})
}

// sourceOf returns cell i's recorded source ("" while pending).
func (s *Sweep) sourceOf(i int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results[i].Source
}

// record stores one cell outcome.
func (s *Sweep) record(i int, source string, rows []experiments.ScenarioRow, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[i].Source = source
	s.results[i].Rows = rows
	s.results[i].Error = errMsg
	switch source {
	case SourceExecuted:
		s.executed++
	case SourceStore:
		s.cached++
	case SourceFailed:
		s.failed++
	}
}

// View is the JSON projection of a sweep. Results are included only
// from the results endpoint — progress polls stay small.
type View struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Status   Status `json:"status"`
	Reason   string `json:"reason,omitempty"`
	Cells    int    `json:"cells"`
	Executed int    `json:"executed"`
	Cached   int    `json:"cached"`
	Failed   int    `json:"failed"`
	Pending  int    `json:"pending"`
	Grid     Grid   `json:"grid"`

	SubmittedAt string `json:"submitted_at"`
	FinishedAt  string `json:"finished_at,omitempty"`

	Results []CellResult `json:"results,omitempty"`
}

// View snapshots the sweep. includeResults additionally copies every
// cell result (specs and rows).
func (s *Sweep) View(includeResults bool) View {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := View{
		ID:          s.id,
		Tenant:      s.owner.ID(),
		Status:      s.status,
		Reason:      s.reason,
		Cells:       len(s.cells),
		Executed:    s.executed,
		Cached:      s.cached,
		Failed:      s.failed,
		Pending:     len(s.cells) - s.executed - s.cached - s.failed,
		Grid:        s.grid,
		SubmittedAt: s.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !s.finished.IsZero() {
		v.FinishedAt = s.finished.UTC().Format(time.RFC3339Nano)
	}
	if includeResults {
		v.Results = append([]CellResult(nil), s.results...)
	}
	return v
}

// Manager owns the sweep table and one orchestration goroutine per
// active sweep.
type Manager struct {
	cfg Config
	reg *metrics.Registry
	log func(format string, args ...any)

	mu        sync.Mutex
	draining  bool
	sweeps    map[string]*Sweep
	open      map[string]*Sweep // non-terminal sweeps by grid content address
	doneOrder []string
	nextID    uint64
	wg        sync.WaitGroup

	// recoveryDone gates Submit: closed at construction when there is
	// nothing to recover, otherwise when Recover finishes rebuilding the
	// open sweeps.
	recoveryDone chan struct{}
	recMu        sync.Mutex
	rec          service.RecoveryStatus

	active *metrics.Gauge
}

// NewManager returns a sweep manager over the given service manager.
func NewManager(cfg Config) *Manager {
	if cfg.Service == nil {
		panic("sweep: Config.Service is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	m := &Manager{
		cfg:          cfg,
		reg:          cfg.Metrics,
		log:          cfg.Log,
		sweeps:       map[string]*Sweep{},
		open:         map[string]*Sweep{},
		recoveryDone: make(chan struct{}),
		active:       cfg.Metrics.Gauge(MetricSweepsActive),
	}
	if len(cfg.WALRecords) > 0 {
		m.rec.Active = true // Recover must be called; Submit waits on it
	} else {
		close(m.recoveryDone)
	}
	return m
}

// RecoveryStatus implements service.RecoveryReporter for /healthz.
func (m *Manager) RecoveryStatus() service.RecoveryStatus {
	m.recMu.Lock()
	defer m.recMu.Unlock()
	return m.rec
}

// walAppend makes a control-plane transition durable. A failed append
// degrades recovery (the transition may replay stale after a crash) but
// must not fail serving, so it is logged and swallowed.
func (m *Manager) walAppend(recs ...store.WALRecord) {
	if m.cfg.WAL == nil {
		return
	}
	if err := m.cfg.WAL.Append(recs...); err != nil {
		m.log("sweep: control WAL append failed: %v", err)
	}
}

// newSweep builds the in-memory sweep for an expanded grid; the caller
// assigns its ID and registers it.
func newSweep(owner *tenant.Tenant, g Grid, cells []Cell) *Sweep {
	sw := &Sweep{
		owner:     owner,
		grid:      g,
		cells:     cells,
		gridKey:   cellsKey(cells),
		done:      make(chan struct{}),
		stopped:   make(chan struct{}),
		status:    StatusRunning,
		results:   make([]CellResult, len(cells)),
		submitted: time.Now(),
	}
	for i, c := range cells {
		sw.results[i] = CellResult{Index: i, Key: c.Key, Spec: c.Spec}
	}
	return sw
}

// Registry returns the registry the manager reports into (never nil).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Submit expands the grid and starts orchestrating it as the anonymous
// tenant — the pre-tenancy API, kept for library callers and tests.
func (m *Manager) Submit(g Grid) (*Sweep, error) {
	return m.SubmitAs(nil, g)
}

// tenants returns the front-door controller shared with the service
// manager (never nil: service.New opens one when unconfigured).
func (m *Manager) tenants() *tenant.Controller { return m.cfg.Service.Tenants() }

// SubmitAs expands the grid and starts orchestrating it on behalf of
// tenant t (nil means anonymous). Expansion errors (invalid cells, cap
// exceeded) are returned synchronously; a draining manager returns
// ErrDraining. A grid whose expansion is identical (by content address)
// to an already-open sweep attaches to that sweep instead of
// double-enqueueing its cells — the caller gets the live sweep back and
// polls it like its own; the result cache is shared across tenants, so
// attachment deliberately crosses tenant lines. Submissions block
// until startup recovery (if any) has rebuilt the open sweeps, so an
// early resubmission cannot race a resuming sweep.
//
// The sweep itself is admitted through the tenant's rate bucket (one
// token per sweep; its cells then pay per-cell tokens as they reach the
// job queue).
func (m *Manager) SubmitAs(t *tenant.Tenant, g Grid) (*Sweep, error) {
	<-m.recoveryDone
	if t == nil {
		t = m.tenants().Anonymous()
	}
	if err := m.tenants().AdmitSubmission(t); err != nil {
		return nil, err
	}
	cells, err := g.Expand()
	if err != nil {
		// The sweep never happened: give the rate token back.
		m.tenants().RefundSubmission(t)
		return nil, err
	}
	sw := newSweep(t, g, cells)

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.tenants().RefundSubmission(t)
		return nil, ErrDraining
	}
	if cur, ok := m.open[sw.gridKey]; ok && !cur.Status().terminal() {
		m.mu.Unlock()
		// The attaching tenant polls the shared sweep like its own, so
		// it needs read access across the tenant line.
		cur.grantAccess(t.ID())
		m.reg.Counter(MetricSweepsAttached).Inc()
		m.log("sweep %s: identical grid resubmitted, attached to the live sweep", cur.id)
		return cur, nil
	}
	m.nextID++
	sw.id = fmt.Sprintf("s%06d", m.nextID)
	m.sweeps[sw.id] = sw
	m.open[sw.gridKey] = sw
	m.wg.Add(1)
	m.mu.Unlock()

	// The opened record is durable before Submit returns, i.e. before
	// the acceptance is externally visible: a crash after this line
	// resumes the sweep, a crash before it never acknowledged one.
	if m.cfg.WAL != nil {
		raw, merr := json.Marshal(g)
		if merr != nil {
			raw = nil
		}
		m.walAppend(store.WALRecord{Kind: store.RecSweepOpened, Sweep: sw.id, GridKey: sw.gridKey, Grid: raw})
	}

	m.reg.Counter(MetricSweepsSubmitted).Inc()
	m.active.Inc()
	m.log("sweep %s: grid expands to %d cells (cap %d)", sw.id, len(cells), g.cap())
	go m.run(sw)
	return sw, nil
}

// Get returns a sweep by ID.
func (m *Manager) Get(id string) (*Sweep, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sw, ok := m.sweeps[id]
	return sw, ok
}

// Cancel stops a running sweep: no further cells are submitted, cells
// already in the service run to completion and are recorded. Cancelling
// a terminal sweep is a no-op.
func (m *Manager) Cancel(id string) (*Sweep, error) {
	sw, ok := m.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	sw.stop(StatusCancelled, "cancelled by client")
	return sw, nil
}

// Drain stops accepting sweeps, interrupts every active sweep's
// submission loop, waits for their in-flight cells to be recorded (the
// service manager must still be running; drain it after this returns),
// and flushes the store so every completed cell is durable for resume.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	actives := make([]*Sweep, 0, len(m.sweeps))
	for _, sw := range m.sweeps {
		actives = append(actives, sw)
	}
	m.mu.Unlock()
	interruptReason := "server draining; resubmit the grid to resume from the store"
	if m.cfg.WAL != nil {
		// The sweep stays open in the control-plane WAL (no sweep-closed
		// record), so the next server start resumes it unprompted.
		interruptReason = "server draining; the sweep resumes automatically on restart"
	}
	for _, sw := range actives {
		sw.stop(StatusInterrupted, interruptReason)
	}

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		return ctx.Err()
	}
	if m.cfg.Store != nil {
		if err := m.cfg.Store.Sync(); err != nil {
			return fmt.Errorf("sweep: flush store on drain: %w", err)
		}
	}
	return nil
}

// cellCounter counts one cell outcome by source.
func (m *Manager) cellCounter(source string) {
	m.reg.Counter(MetricCells + `{source="` + source + `"}`).Inc()
}

// finishCell records one terminal cell outcome and, for executed or
// failed cells, makes it durable in the control-plane WAL. Stored cells
// write no WAL record: the result journal is already their proof, and
// failed records are load-bearing on resume — a pre-marked poison cell
// is not re-executed on every restart.
func (m *Manager) finishCell(sw *Sweep, i int, source string, rows []experiments.ScenarioRow, errMsg string) {
	sw.record(i, source, rows, errMsg)
	m.cellCounter(source)
	if source == SourceExecuted || source == SourceFailed {
		m.walAppend(store.WALRecord{Kind: store.RecUnitCompleted, Sweep: sw.id, Key: sw.cells[i].Key, Source: source, Error: errMsg})
	}
}

// run is the per-sweep orchestration loop: store lookup, bounded
// submission into the service, asynchronous collection.
func (m *Manager) run(sw *Sweep) {
	defer m.wg.Done()
	defer m.active.Dec()

	sem := make(chan struct{}, m.cfg.MaxInFlight)
	var wg sync.WaitGroup
submission:
	for i := range sw.cells {
		select {
		case <-sw.stopped:
			break submission
		default:
		}
		cell := sw.cells[i]

		// Cells already terminal before this loop started are recovered
		// pre-crash failures; re-executing them every restart would make
		// one poison cell an infinite loop of work.
		if sw.sourceOf(i) != "" {
			continue
		}

		// Store lookup first: a stored cell never touches the queue.
		if m.cfg.Store != nil {
			if rows, ok, _ := m.cfg.Store.GetScenario(cell.Spec); ok {
				sw.record(i, SourceStore, rows, "")
				m.cellCounter(SourceStore)
				continue
			}
		}

		// Bound in-flight cells — first by this sweep's own cap, then by
		// the tenant's concurrent-cell quota — then submit; a full queue
		// is back-pressure, not failure — wait and retry.
		select {
		case sem <- struct{}{}:
		case <-sw.stopped:
			break submission
		}
		if !m.acquireCellSlot(sw) {
			<-sem
			break submission
		}
		job, err := m.submitCell(sw, cell)
		if err != nil {
			m.tenants().ReleaseSweepCell(sw.owner)
			<-sem
			if errors.Is(err, service.ErrDraining) {
				sw.stop(StatusInterrupted, "service draining; resubmit the grid to resume from the store")
			} else {
				// Cells were validated at expansion, so this is a
				// service-side failure worth recording against the cell.
				m.finishCell(sw, i, SourceFailed, nil, err.Error())
				continue
			}
			break submission
		}
		m.walAppend(store.WALRecord{Kind: store.RecUnitEnqueued, Sweep: sw.id, Key: cell.Key})
		wg.Add(1)
		go func(i int, job *service.Job) {
			defer wg.Done()
			defer func() { <-sem }()
			defer m.tenants().ReleaseSweepCell(sw.owner)
			<-job.Done()
			m.collect(sw, i, job)
		}(i, job)
	}
	wg.Wait()

	sw.stop(StatusDone, "") // no-op if already interrupted/cancelled
	sw.mu.Lock()
	sw.finished = time.Now()
	status, executed, cached, failed := sw.status, sw.executed, sw.cached, sw.failed
	sw.mu.Unlock()
	// done and cancelled are final verdicts worth forgetting; an
	// interrupted sweep stays open in the WAL so the next server start
	// resumes it with no operator involved.
	if status == StatusDone || status == StatusCancelled {
		m.walAppend(store.WALRecord{Kind: store.RecSweepClosed, Sweep: sw.id, Status: string(status)})
	}
	m.log("sweep %s: %s (%d executed, %d cached, %d failed of %d cells)",
		sw.id, status, executed, cached, failed, len(sw.cells))
	close(sw.done)
	m.retire(sw)
}

// queueFullPolicy is the schedule for waiting out a saturated job
// queue: quick first retries (a worker slot frees on millisecond
// scales), flattening out so a long-stalled queue is not hammered.
var queueFullPolicy = backoff.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}

// acquireCellSlot claims one of the tenant's concurrent-sweep-cell
// slots, waiting on the backoff schedule while the quota is exhausted
// (another of the tenant's cells finishing frees one). Returns false if
// the sweep stopped while waiting.
func (m *Manager) acquireCellSlot(sw *Sweep) bool {
	err := backoff.Retry(context.Background(), sw.stopped, queueFullPolicy, func() (bool, error) {
		return m.tenants().AcquireSweepCell(sw.owner), nil
	})
	return err == nil
}

// submitCell pushes one cell into the service on behalf of the sweep's
// tenant, waiting out transient 429-class rejections. A rate-limited
// rejection carries the tenant's token-bucket refill time, so the loop
// sleeps exactly that long instead of guessing; capacity rejections
// (full queue, quota, shedding) have no schedule of their own and use
// the shared bounded-backoff policy (a worker slot frees on
// millisecond scales).
func (m *Manager) submitCell(sw *Sweep, cell Cell) (*service.Job, error) {
	for attempt := 0; ; attempt++ {
		job, err := m.cfg.Service.SubmitAs(sw.owner, service.Spec{ScenarioConfig: cell.Spec})
		if err == nil {
			return job, nil
		}
		var wait time.Duration
		var adm *tenant.AdmissionError
		switch {
		case errors.As(err, &adm) && adm.Reason == tenant.ReasonRateLimited:
			wait = adm.RetryAfter() // honest schedule: when the bucket refills
		case errors.Is(err, service.ErrQueueFull),
			errors.Is(err, tenant.ErrQuota),
			errors.Is(err, tenant.ErrShed):
			wait = queueFullPolicy.Delay(attempt) // back-pressure, not failure
		default:
			return nil, err
		}
		select {
		case <-time.After(wait):
		case <-sw.stopped:
			return nil, service.ErrDraining
		}
	}
}

// collect records a finished cell and writes executed results back to
// the store (idempotent when the service manager shares the store and
// already wrote them).
func (m *Manager) collect(sw *Sweep, i int, job *service.Job) {
	switch job.Status() {
	case service.StatusDone:
		rows := job.Rows()
		source := SourceExecuted
		if job.View().Source == "store" {
			source = SourceStore // raced another submitter to the same spec
		} else if m.cfg.Store != nil {
			_ = m.cfg.Store.PutScenario(sw.cells[i].Spec, rows, store.Meta{Version: m.cfg.Version})
		}
		m.finishCell(sw, i, source, rows, "")
	case service.StatusFailed:
		m.finishCell(sw, i, SourceFailed, nil, job.Err())
	default: // cancelled, e.g. by a client hitting the job API directly
		m.finishCell(sw, i, SourceFailed, nil, "cell job cancelled")
	}
}

// retire records a terminal sweep and evicts beyond the retention
// bound.
func (m *Manager) retire(sw *Sweep) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.open[sw.gridKey] == sw {
		delete(m.open, sw.gridKey)
	}
	m.doneOrder = append(m.doneOrder, sw.id)
	for len(m.doneOrder) > m.cfg.Retain {
		evict := m.doneOrder[0]
		m.doneOrder = m.doneOrder[1:]
		delete(m.sweeps, evict)
	}
}
