package sweep

// Startup crash recovery: replaying the control-plane WAL rebuilds the
// sweeps that were open when the previous server incarnation died and
// resumes them with zero operator action. The result journal (replayed
// separately by store.Open) is the authority on completed work; the WAL
// is the authority on promises — which sweeps were accepted and which
// of their cells were still owed. Recovery joins the two: cells the
// store already holds are served as cache hits, cells that failed
// before the crash stay failed (one poison cell must not become an
// infinite loop of restarts re-executing it), and everything else is
// re-enqueued through the normal run loop.

import (
	"encoding/json"
	"strconv"
	"time"

	"repro/internal/store"
)

// walTrail is one sweep's reduction of the replayed WAL: the grid it
// was opened with and the per-cell outcomes recorded before the crash.
type walTrail struct {
	id        string
	gridKey   string
	grid      json.RawMessage
	closed    bool
	enqueued  map[string]bool   // unit-enqueued keys
	completed map[string]bool   // unit-completed keys (any source)
	failed    map[string]string // key -> error for failed completions
}

// parseSweepID inverts the "s%06d" ID format so recovery can advance
// the allocator past every recovered ID (a fresh submission must never
// collide with a sweep a client is still polling).
func parseSweepID(id string) (uint64, bool) {
	if len(id) < 2 || id[0] != 's' {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Recover replays Config.WALRecords, re-registers every sweep that was
// open at the last shutdown under its original ID, compacts the WAL
// down to the still-live records, and launches the resumed run loops.
// It must be called exactly once, after construction, whenever
// WALRecords is non-empty (NewManager arms the Submit gate on that
// condition); it is safe — a no-op — otherwise. Callers normally run it
// in a goroutine once the listener is up: /healthz reports "degraded"
// with a recovery section while it works, and Submit blocks until it
// finishes so an eager resubmission cannot race a resuming sweep into a
// duplicate.
func (m *Manager) Recover() {
	recs := m.cfg.WALRecords
	if len(recs) == 0 {
		return
	}
	start := time.Now()
	defer func() {
		wall := time.Since(start).Microseconds()
		m.reg.Gauge(MetricRecoveryWallTime).Set(wall)
		m.recMu.Lock()
		m.rec.Active = false
		m.rec.WallTimeMicros = wall
		m.recMu.Unlock()
		close(m.recoveryDone)
	}()

	m.reg.Counter(MetricRecoveryReplayed).Add(int64(len(recs)))
	m.recMu.Lock()
	m.rec.ReplayedRecords = int64(len(recs))
	m.recMu.Unlock()

	// First pass: reduce the flat log to per-sweep trails. Records with
	// no sweep are the cluster coordinator's execution audit; pairing
	// their enqueues with completions identifies units that were in
	// flight on the fleet when the server died (informational only —
	// worker leases expired with the old incarnation, and any unit still
	// wanted is re-planned by its resumed sweep).
	trails := map[string]*walTrail{}
	var order []string
	clusterOpen := map[string]bool{}
	for _, r := range recs {
		if r.Sweep == "" {
			switch r.Kind {
			case store.RecUnitEnqueued:
				clusterOpen[r.Key] = true
			case store.RecUnitCompleted:
				delete(clusterOpen, r.Key)
			}
			continue
		}
		t := trails[r.Sweep]
		if t == nil {
			t = &walTrail{
				id:        r.Sweep,
				enqueued:  map[string]bool{},
				completed: map[string]bool{},
				failed:    map[string]string{},
			}
			trails[r.Sweep] = t
			order = append(order, r.Sweep)
		}
		switch r.Kind {
		case store.RecSweepOpened:
			t.gridKey = r.GridKey
			t.grid = r.Grid
		case store.RecUnitEnqueued:
			t.enqueued[r.Key] = true
		case store.RecUnitCompleted:
			t.completed[r.Key] = true
			if r.Source == SourceFailed {
				msg := r.Error
				if msg == "" {
					msg = "failed before restart"
				}
				t.failed[r.Key] = msg
			}
		case store.RecSweepClosed:
			t.closed = true
		}
	}

	// Advance the ID allocator past every sweep the log has ever named,
	// open or closed: a client may still be polling a closed ID, and a
	// fresh submission must not be handed a recycled one.
	m.mu.Lock()
	for id := range trails {
		if n, ok := parseSweepID(id); ok && n > m.nextID {
			m.nextID = n
		}
	}
	m.mu.Unlock()

	// Second pass: adopt every open sweep. The keep list is the compacted
	// WAL — opened records plus failed completions for sweeps still live;
	// closed sweeps and satisfied unit records stop being replayed on
	// every future startup.
	type adoption struct {
		sw       *Sweep
		pending  int
		inflight int
	}
	var adopted []adoption
	var keep []store.WALRecord
	var reenqueued int64
	for _, id := range order {
		t := trails[id]
		if t.closed {
			continue
		}
		if len(t.grid) == 0 {
			m.log("sweep %s: WAL has unit records but no opened record (corrupt prefix?); cannot resume", id)
			continue
		}
		var g Grid
		if err := json.Unmarshal(t.grid, &g); err != nil {
			m.log("sweep %s: stored grid does not decode (%v); cannot resume", id, err)
			continue
		}
		cells, err := g.Expand()
		if err != nil {
			m.log("sweep %s: stored grid does not expand (%v); cannot resume", id, err)
			continue
		}
		// The WAL does not record tenancy, so recovered sweeps run as
		// anonymous: the results land in the shared store either way, and
		// their cells still pay the anonymous rate/quota limits.
		sw := newSweep(m.tenants().Anonymous(), g, cells)
		sw.id = t.id

		// Pre-mark pre-crash failures so the run loop skips them, and
		// classify the rest: cells the store holds resolve as cache hits
		// inside run; everything else re-enqueues. Cells enqueued but
		// never completed or stored were in flight at the kill — their
		// work (if any finished on a worker after the crash) is invisible,
		// so they re-run; idempotent Put makes the duplicate harmless.
		a := adoption{sw: sw}
		for i, c := range cells {
			if msg, ok := t.failed[c.Key]; ok {
				sw.record(i, SourceFailed, nil, msg)
				continue
			}
			if m.cfg.Store != nil {
				if _, ok, _ := m.cfg.Store.GetScenario(c.Spec); ok {
					continue
				}
			}
			a.pending++
			if t.enqueued[c.Key] && !t.completed[c.Key] {
				a.inflight++
			}
		}

		keep = append(keep, store.WALRecord{Kind: store.RecSweepOpened, Sweep: t.id, GridKey: sw.gridKey, Grid: t.grid})
		for _, c := range cells { // deterministic cell order, not map order
			if msg, ok := t.failed[c.Key]; ok {
				keep = append(keep, store.WALRecord{Kind: store.RecUnitCompleted, Sweep: t.id, Key: c.Key, Source: SourceFailed, Error: msg})
			}
		}

		m.mu.Lock()
		m.sweeps[sw.id] = sw
		m.open[sw.gridKey] = sw
		m.wg.Add(1)
		draining := m.draining
		m.mu.Unlock()
		if draining {
			sw.stop(StatusInterrupted, "server draining; the sweep resumes automatically on restart")
		}
		m.active.Inc()
		reenqueued += int64(a.pending)
		adopted = append(adopted, a)
	}

	// Compact before launching the resumed run loops: their fresh appends
	// must land after the rewritten prefix, not interleave with records
	// the rewrite is about to drop.
	if m.cfg.WAL != nil {
		if err := m.cfg.WAL.Compact(keep); err != nil {
			m.log("sweep: control WAL compaction failed (recovery continues on the uncompacted log): %v", err)
		}
	}

	m.reg.Counter(MetricSweepsResumed).Add(int64(len(adopted)))
	m.reg.Counter(MetricRecoveryReenqueued).Add(reenqueued)
	m.recMu.Lock()
	m.rec.ResumedSweeps = int64(len(adopted))
	m.rec.ReenqueuedUnits = reenqueued
	m.recMu.Unlock()

	if len(clusterOpen) > 0 {
		m.log("sweep: %d cluster unit(s) were in flight at the last shutdown; their leases died with it and resumed sweeps re-plan any still wanted", len(clusterOpen))
	}
	for _, a := range adopted {
		m.log("sweep %s: resumed from control WAL (%d of %d cells pending, %d in flight at the crash, %d failed before it)",
			a.sw.id, a.pending, len(a.sw.cells), a.inflight, a.sw.failedCount())
		go m.run(a.sw)
	}
	m.log("sweep: recovery replayed %d WAL records, resumed %d sweep(s), re-enqueued %d unit(s) in %s",
		len(recs), len(adopted), reenqueued, time.Since(start).Round(time.Millisecond))
}

// failedCount reads the failed tally under the sweep lock.
func (s *Sweep) failedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}
