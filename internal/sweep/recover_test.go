package sweep

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/store"
)

// TestAttachIdenticalOpenSweep is the regression test for the
// double-enqueue bug: resubmitting a grid whose expansion is identical
// (by content address) to an already-open sweep must return the live
// sweep, not start a second copy of the same work.
func TestAttachIdenticalOpenSweep(t *testing.T) {
	reg := metrics.New()
	svc := service.New(service.Config{Workers: 1, Metrics: reg})
	sm := NewManager(Config{Service: svc, Metrics: reg, MaxInFlight: 1})

	g := Grid{N: []int{40, 50, 60, 70}, Attack: []string{"drop"}, Trials: 8, Seed: 3, Workers: 1}
	sw, err := sm.Submit(g)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// A differently spelled grid with the identical expansion attaches
	// too: attachment keys on the expanded cells, not the spec bytes.
	respelled := g
	respelled.Malicious = []int{1} // "drop" already defaults to 1 attacker
	sw2, err := sm.Submit(respelled)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if sw2 != sw || sw2.ID() != sw.ID() {
		t.Fatalf("identical open grid spawned a second sweep: %s vs %s", sw2.ID(), sw.ID())
	}
	if got := reg.Counter(MetricSweepsAttached).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSweepsAttached, got)
	}
	if got := reg.Counter(MetricSweepsSubmitted).Value(); got != 1 {
		t.Fatalf("attach still counted as a submission: %d", got)
	}

	// A genuinely different grid is its own sweep.
	other := g
	other.Trials = 9
	sw3, err := sm.Submit(other)
	if err != nil {
		t.Fatalf("submit different grid: %v", err)
	}
	if sw3 == sw {
		t.Fatalf("different grid attached to the open sweep")
	}

	for _, s := range []*Sweep{sw, sw3} {
		if _, err := sm.Cancel(s.ID()); err != nil {
			t.Fatalf("Cancel: %v", err)
		}
	}
	waitSweep(t, sw)
	waitSweep(t, sw3)

	// Once the sweep is terminal the address is free again: the same
	// grid now starts a fresh sweep (which TestSweepExecutesThenServesFromStore
	// shows is all cache hits when a store is attached).
	sw4, err := sm.Submit(g)
	if err != nil {
		t.Fatalf("post-terminal resubmit: %v", err)
	}
	if sw4 == sw {
		t.Fatalf("terminal sweep still captured the resubmission")
	}
	waitSweep(t, sw4)
	drainAll(t, sm, svc)
}

// TestRecoverResumesInterruptedSweep is the in-process version of the
// tentpole: a sweep interrupted mid-flight (its WAL has sweep-opened
// and some completions, but no sweep-closed) is resumed by a second
// manager incarnation under its original ID, skips every stored cell,
// executes only the remainder, and closes the sweep in the WAL so a
// third incarnation finds nothing to do.
func TestRecoverResumesInterruptedSweep(t *testing.T) {
	dir := t.TempDir()
	g := Grid{N: []int{40, 50, 60, 70}, Attack: []string{"none", "drop"}, Trials: 6, Seed: 11, Workers: 1}

	// Incarnation 1: run until at least one cell executed, then drain —
	// the WAL keeps the sweep open.
	st1, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	wal1, recs, err := store.OpenWAL(dir, store.WALConfig{})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL has %d records", len(recs))
	}
	svc1 := service.New(service.Config{Workers: 1, Store: st1})
	sm1 := NewManager(Config{Service: svc1, Store: st1, MaxInFlight: 1, WAL: wal1})
	sw, err := sm1.Submit(g)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	origID := sw.ID()
	deadline := time.Now().Add(60 * time.Second)
	for sw.View(false).Executed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	drainAll(t, sm1, svc1)
	waitSweep(t, sw)
	v1 := sw.View(false)
	if v1.Pending == 0 {
		t.Skipf("sweep finished before the drain landed (executed %d); nothing to resume", v1.Executed)
	}
	st1.Close()
	wal1.Close()

	// Incarnation 2: replay, recover, and the sweep finishes by itself.
	reg := metrics.New()
	st2, err := store.Open(dir, store.Config{Metrics: reg})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	wal2, recs, err := store.OpenWAL(dir, store.WALConfig{Metrics: reg})
	if err != nil {
		t.Fatalf("reopen WAL: %v", err)
	}
	if len(recs) == 0 {
		t.Fatalf("interrupted sweep left no WAL records")
	}
	svc2 := service.New(service.Config{Workers: 2, Metrics: reg, Store: st2})
	sm2 := NewManager(Config{Service: svc2, Store: st2, Metrics: reg, WAL: wal2, WALRecords: recs})
	if !sm2.RecoveryStatus().Active {
		t.Fatalf("manager with WAL records is not in recovery")
	}

	// Submit must block until recovery finishes, so a racing resubmission
	// cannot duplicate the resuming sweep.
	submitted := make(chan *Sweep, 1)
	go func() {
		s, serr := sm2.Submit(g)
		if serr != nil {
			t.Errorf("racing resubmit: %v", serr)
		}
		submitted <- s
	}()
	select {
	case <-submitted:
		t.Fatalf("Submit returned before Recover ran")
	case <-time.After(50 * time.Millisecond):
	}

	sm2.Recover()
	rs := sm2.RecoveryStatus()
	if rs.Active || rs.ReplayedRecords != int64(len(recs)) || rs.ResumedSweeps != 1 {
		t.Fatalf("recovery status: %+v", rs)
	}
	if rs.ReenqueuedUnits != int64(v1.Pending) {
		t.Fatalf("recovery re-enqueued %d units, incarnation 1 left %d pending", rs.ReenqueuedUnits, v1.Pending)
	}
	if got := reg.Counter(MetricSweepsResumed).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricSweepsResumed, got)
	}

	rsw, ok := sm2.Get(origID)
	if !ok {
		t.Fatalf("resumed sweep lost its original ID %s", origID)
	}
	// The racing resubmission attached to the resumed sweep.
	if got := <-submitted; got != rsw {
		t.Fatalf("racing resubmission spawned %s instead of attaching to %s", got.ID(), origID)
	}
	waitSweep(t, rsw)
	v2 := rsw.View(false)
	if v2.Status != StatusDone || v2.Cached != v1.Executed || v2.Executed != v1.Pending || v2.Failed != 0 {
		t.Fatalf("resume mismatch: incarnation 1 %+v, resumed %+v", v1, v2)
	}
	// Work already stored was not re-executed: the engine ran exactly
	// one execution per trial per pending cell, none for stored ones.
	if got := reg.Counter(core.MetricExecutions).Value(); got != int64(v1.Pending*g.Trials) {
		t.Fatalf("resumed incarnation ran %d engine executions, want %d (%d pending cells x %d trials)",
			got, v1.Pending*g.Trials, v1.Pending, g.Trials)
	}
	drainAll(t, sm2, svc2)
	st2.Close()
	wal2.Close()

	// Incarnation 3: the run-loop's sweep-closed record means nothing is
	// open anymore — recovery resumes zero sweeps.
	wal3, recs, err := store.OpenWAL(dir, store.WALConfig{})
	if err != nil {
		t.Fatalf("third OpenWAL: %v", err)
	}
	defer wal3.Close()
	svc3 := service.New(service.Config{Workers: 1})
	sm3 := NewManager(Config{Service: svc3, WAL: wal3, WALRecords: recs})
	sm3.Recover()
	if rs := sm3.RecoveryStatus(); rs.ResumedSweeps != 0 || rs.Active {
		t.Fatalf("closed sweep resumed again: %+v", rs)
	}
}

// TestRecoverPreMarksFailedCells: a unit-completed(failed) record in
// the WAL keeps the cell failed across restarts — a poison cell must
// not re-execute on every boot — while preserving its error text.
func TestRecoverPreMarksFailedCells(t *testing.T) {
	g := smallGrid()
	cells, err := g.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	raw, _ := json.Marshal(g)
	recs := []store.WALRecord{
		{Kind: store.RecSweepOpened, Sweep: "s000007", GridKey: cellsKey(cells), Grid: raw},
		{Kind: store.RecUnitEnqueued, Sweep: "s000007", Key: cells[0].Key},
		{Kind: store.RecUnitCompleted, Sweep: "s000007", Key: cells[0].Key, Source: SourceFailed, Error: "boom before restart"},
		// A cluster audit record (no sweep) must not confuse the trails.
		{Kind: store.RecUnitEnqueued, Key: "cluster-unit"},
	}

	reg := metrics.New()
	svc := service.New(service.Config{Workers: 2, Metrics: reg})
	sm := NewManager(Config{Service: svc, Metrics: reg, WALRecords: recs})
	sm.Recover()
	sw, ok := sm.Get("s000007")
	if !ok {
		t.Fatalf("hand-written sweep not resumed")
	}
	waitSweep(t, sw)
	v := sw.View(true)
	if v.Failed != 1 || v.Executed != len(cells)-1 {
		t.Fatalf("resumed sweep: %+v", v)
	}
	if r := v.Results[0]; r.Source != SourceFailed || r.Error != "boom before restart" {
		t.Fatalf("poison cell lost its verdict: %+v", r)
	}
	// Recovered IDs push the allocator forward: no recycled IDs.
	sw2, err := sm.Submit(Grid{N: []int{20}, Trials: 1, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatalf("Submit after recovery: %v", err)
	}
	if sw2.ID() <= "s000007" {
		t.Fatalf("fresh sweep ID %s not past recovered s000007", sw2.ID())
	}
	waitSweep(t, sw2)
	drainAll(t, sm, svc)
}
