package sweep

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/store"
)

// smallGrid expands to 4 quick cells: 2 sizes x {none, drop}.
func smallGrid() Grid {
	return Grid{
		N:       []int{20, 30},
		Attack:  []string{"none", "drop"},
		Trials:  2,
		Seed:    7,
		Workers: 2,
	}
}

func waitSweep(t *testing.T, sw *Sweep) {
	t.Helper()
	select {
	case <-sw.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("sweep %s did not finish: %+v", sw.ID(), sw.View(false))
	}
}

func drainAll(t *testing.T, sm *Manager, svc *service.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.Drain(ctx); err != nil {
		t.Fatalf("sweep drain: %v", err)
	}
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("service drain: %v", err)
	}
}

func TestGridExpandCrossProductAndDedup(t *testing.T) {
	g := Grid{
		N:         []int{20, 30},
		Attack:    []string{"none", "drop"},
		Malicious: []int{1, 2},
		Trials:    2,
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// Per n: none collapses the malicious dimension to one cell (the
	// duplicate is deduped by content address), drop keeps both counts.
	if len(cells) != 6 {
		t.Fatalf("expanded to %d cells, want 6: %+v", len(cells), cells)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key] {
			t.Fatalf("duplicate cell key %s", c.Key)
		}
		seen[c.Key] = true
		if c.Spec.Attack == "none" && c.Spec.Malicious != 0 {
			t.Fatalf("unnormalized cell: %+v", c.Spec)
		}
	}
}

func TestGridCapEnforced(t *testing.T) {
	g := Grid{
		N:        []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Theta:    make([]int, 30),
		LossRate: make([]float64, 20),
	}
	for i := range g.Theta {
		g.Theta[i] = i + 1
	}
	for i := range g.LossRate {
		g.LossRate[i] = float64(i) / 100
	}
	if _, err := g.Expand(); err == nil {
		t.Fatalf("6000-cell grid passed the default %d cap", DefaultMaxCells)
	}
	g.MaxCells = 6000
	if _, err := g.Expand(); err != nil {
		t.Fatalf("explicit max_cells did not raise the cap: %v", err)
	}
	g.MaxCells = MaxCellsLimit + 1
	if _, err := g.Expand(); err == nil {
		t.Fatalf("max_cells beyond the hard limit accepted")
	}

	bad := Grid{Attack: []string{"frobnicate"}}
	if _, err := bad.Expand(); err == nil {
		t.Fatalf("invalid attack expanded cleanly")
	}
}

// TestSweepExecutesThenServesFromStore runs the same grid twice over
// one store: the first sweep executes every cell, the second must be
// all cache hits with zero additional engine executions.
func TestSweepExecutesThenServesFromStore(t *testing.T) {
	reg := metrics.New()
	st, err := store.Open(t.TempDir(), store.Config{Metrics: reg})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	svc := service.New(service.Config{Workers: 2, Metrics: reg, Store: st})
	sm := NewManager(Config{Service: svc, Store: st, Metrics: reg})

	sw, err := sm.Submit(smallGrid())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitSweep(t, sw)
	v := sw.View(true)
	if v.Status != StatusDone || v.Executed != v.Cells || v.Cached != 0 || v.Failed != 0 {
		t.Fatalf("first sweep: %+v", v)
	}
	for _, c := range v.Results {
		if len(c.Rows) != 2 || c.Source != SourceExecuted {
			t.Fatalf("cell %d: source %q rows %d", c.Index, c.Source, len(c.Rows))
		}
	}
	execs := reg.Counter(core.MetricExecutions).Value()

	sw2, err := sm.Submit(smallGrid())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	waitSweep(t, sw2)
	v2 := sw2.View(true)
	if v2.Status != StatusDone || v2.Cached != v2.Cells || v2.Executed != 0 {
		t.Fatalf("second sweep not fully cached: %+v", v2)
	}
	if got := reg.Counter(core.MetricExecutions).Value(); got != execs {
		t.Fatalf("cached sweep executed the engine: %d -> %d", execs, got)
	}
	// Cached rows equal executed rows, cell by cell.
	for i := range v.Results {
		if !reflect.DeepEqual(v.Results[i].Rows, v2.Results[i].Rows) {
			t.Fatalf("cell %d rows differ between executed and cached sweep", i)
		}
	}
	drainAll(t, sm, svc)
}

// TestSweepResumeAcrossRestart simulates the restart path: a first
// process completes a sub-grid and shuts down; a second process (new
// store handle replaying the journal, new managers) sweeps a superset
// grid and must only execute the new cells.
func TestSweepResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	st1, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	svc1 := service.New(service.Config{Workers: 2, Store: st1})
	sm1 := NewManager(Config{Service: svc1, Store: st1})
	sub := smallGrid()
	sub.N = []int{20} // half of the eventual grid
	sw, err := sm1.Submit(sub)
	if err != nil {
		t.Fatalf("submit sub-grid: %v", err)
	}
	waitSweep(t, sw)
	if v := sw.View(false); v.Executed != 2 {
		t.Fatalf("sub-grid: %+v", v)
	}
	drainAll(t, sm1, svc1)
	if err := st1.Close(); err != nil {
		t.Fatalf("close store: %v", err)
	}

	// "Restart": everything rebuilt from the journal on disk.
	reg := metrics.New()
	st2, err := store.Open(dir, store.Config{Metrics: reg})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	svc2 := service.New(service.Config{Workers: 2, Metrics: reg, Store: st2})
	sm2 := NewManager(Config{Service: svc2, Store: st2, Metrics: reg})
	sw2, err := sm2.Submit(smallGrid())
	if err != nil {
		t.Fatalf("submit full grid: %v", err)
	}
	waitSweep(t, sw2)
	v := sw2.View(false)
	if v.Status != StatusDone || v.Cached != 2 || v.Executed != 2 || v.Failed != 0 {
		t.Fatalf("resumed sweep should skip the 2 stored cells and run 2 new ones: %+v", v)
	}
	drainAll(t, sm2, svc2)
}

// TestDrainInterruptsSweep: draining mid-sweep must stop submission,
// record in-flight cells, mark the sweep interrupted, and leave the
// store consistent so a resubmission resumes.
func TestDrainInterruptsSweep(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	svc := service.New(service.Config{Workers: 1, Store: st})
	sm := NewManager(Config{Service: svc, Store: st, MaxInFlight: 1})

	// Enough moderately sized cells that the sweep is still running
	// when we drain right after the first completions.
	g := Grid{N: []int{40, 50, 60, 70}, Attack: []string{"none", "drop"}, Trials: 6, Seed: 11, Workers: 1}
	sw, err := sm.Submit(g)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sw.View(false).Executed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	drainAll(t, sm, svc)
	waitSweep(t, sw)

	v := sw.View(false)
	if v.Status != StatusDone && v.Status != StatusInterrupted {
		t.Fatalf("drained sweep status %s", v.Status)
	}
	if v.Executed+v.Cached+v.Failed+v.Pending != v.Cells {
		t.Fatalf("cell accounting broken: %+v", v)
	}
	if v.Failed != 0 {
		t.Fatalf("drain turned pending cells into failures: %+v", v)
	}
	if st.Len() != v.Executed {
		t.Fatalf("store holds %d cells, sweep executed %d", st.Len(), v.Executed)
	}
	st.Close()

	// Resume after the "restart": only the pending remainder executes.
	st2, err := store.Open(dir, store.Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	svc2 := service.New(service.Config{Workers: 2, Store: st2})
	sm2 := NewManager(Config{Service: svc2, Store: st2})
	sw2, err := sm2.Submit(g)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	waitSweep(t, sw2)
	v2 := sw2.View(false)
	if v2.Status != StatusDone || v2.Cached != v.Executed || v2.Executed != v.Cells-v.Executed {
		t.Fatalf("resume mismatch: first run executed %d/%d, second run %+v", v.Executed, v.Cells, v2)
	}
	drainAll(t, sm2, svc2)
}

func TestCancelStopsSubmission(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	sm := NewManager(Config{Service: svc, MaxInFlight: 1})
	g := Grid{N: []int{40, 50, 60, 70}, Attack: []string{"drop"}, Trials: 8, Seed: 3, Workers: 1}
	sw, err := sm.Submit(g)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := sm.Cancel(sw.ID()); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitSweep(t, sw)
	if got := sw.Status(); got != StatusCancelled && got != StatusDone {
		t.Fatalf("cancelled sweep status %s", got)
	}
	if _, err := sm.Cancel("s999999"); err == nil {
		t.Fatalf("cancelling an unknown sweep succeeded")
	}
	drainAll(t, sm, svc)
}
