package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/tenant"
)

// TestSweepCompletesUnderSweepCellQuota: a tenant capped at one
// concurrent sweep cell still finishes a multi-cell sweep — the quota
// serializes the cells instead of failing them.
func TestSweepCompletesUnderSweepCellQuota(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"anonymous": {}, "tenants": [{"id": "capped", "key": "k", "max_sweep_cells": 1}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	ctl, err := tenant.NewController(tenant.Config{Path: path, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, Metrics: reg, Tenants: ctl})
	sm := NewManager(Config{Service: svc, Metrics: reg, MaxInFlight: 4})

	capped, err := ctl.Authenticate("k")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sm.SubmitAs(capped, smallGrid())
	if err != nil {
		t.Fatalf("SubmitAs: %v", err)
	}
	if sw.Tenant() != "capped" {
		t.Fatalf("sweep tenant = %q, want capped", sw.Tenant())
	}
	waitSweep(t, sw)
	v := sw.View(false)
	if v.Status != StatusDone || v.Executed != v.Cells || v.Failed != 0 {
		t.Fatalf("quota-capped sweep ended %+v, want all %d cells executed", v, v.Cells)
	}
	if v.Tenant != "capped" {
		t.Fatalf("view tenant = %q, want capped", v.Tenant)
	}

	// Every claimed slot was returned.
	text := &strings.Builder{}
	if err := reg.WriteText(text); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(text.String(), "\n") {
		if strings.HasPrefix(line, tenant.MetricSweepCells) && strings.Contains(line, `tenant="capped"`) {
			if !strings.HasSuffix(line, " 0") {
				t.Fatalf("sweep-cell gauge did not return to zero: %s", line)
			}
		}
	}
	drainAll(t, sm, svc)
}

// TestSweepSubmitRateLimited: sweep submission itself pays the
// tenant's rate bucket, and the rejection is an AdmissionError the
// HTTP layer can turn into 429 + Retry-After.
func TestSweepSubmitRateLimited(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants": [{"id": "lab", "key": "k", "rate": 0.1, "burst": 1}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	ctl, err := tenant.NewController(tenant.Config{Path: path, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, Metrics: reg, Tenants: ctl})
	sm := NewManager(Config{Service: svc, Metrics: reg})

	lab, _ := ctl.Authenticate("k")
	// Burst of 1: the sweep consumes it; its cells ride the submitCell
	// retry loop, so the sweep still completes, just paced by the bucket.
	sw, err := sm.SubmitAs(lab, Grid{N: []int{20}, Trials: 1, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatalf("first SubmitAs: %v", err)
	}
	if _, err := sm.SubmitAs(lab, smallGrid()); err == nil {
		t.Fatal("second sweep admitted with an empty bucket")
	} else {
		var adm *tenant.AdmissionError
		if !errors.As(err, &adm) || adm.Reason != tenant.ReasonRateLimited {
			t.Fatalf("second SubmitAs error = %v, want rate_limited AdmissionError", err)
		}
	}
	waitSweep(t, sw)
	drainAll(t, sm, svc)
}
