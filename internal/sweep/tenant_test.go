package sweep

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/tenant"
)

// TestSweepCompletesUnderSweepCellQuota: a tenant capped at one
// concurrent sweep cell still finishes a multi-cell sweep — the quota
// serializes the cells instead of failing them.
func TestSweepCompletesUnderSweepCellQuota(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"anonymous": {}, "tenants": [{"id": "capped", "key": "k", "max_sweep_cells": 1}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	ctl, err := tenant.NewController(tenant.Config{Path: path, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, Metrics: reg, Tenants: ctl})
	sm := NewManager(Config{Service: svc, Metrics: reg, MaxInFlight: 4})

	capped, err := ctl.Authenticate("k")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sm.SubmitAs(capped, smallGrid())
	if err != nil {
		t.Fatalf("SubmitAs: %v", err)
	}
	if sw.Tenant() != "capped" {
		t.Fatalf("sweep tenant = %q, want capped", sw.Tenant())
	}
	waitSweep(t, sw)
	v := sw.View(false)
	if v.Status != StatusDone || v.Executed != v.Cells || v.Failed != 0 {
		t.Fatalf("quota-capped sweep ended %+v, want all %d cells executed", v, v.Cells)
	}
	if v.Tenant != "capped" {
		t.Fatalf("view tenant = %q, want capped", v.Tenant)
	}

	// Every claimed slot was returned.
	text := &strings.Builder{}
	if err := reg.WriteText(text); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(text.String(), "\n") {
		if strings.HasPrefix(line, tenant.MetricSweepCells) && strings.Contains(line, `tenant="capped"`) {
			if !strings.HasSuffix(line, " 0") {
				t.Fatalf("sweep-cell gauge did not return to zero: %s", line)
			}
		}
	}
	drainAll(t, sm, svc)
}

// TestSweepAccessScopedToTenant: sweep IDs are sequential, so the
// sweep API must scope reads and cancels to the owning tenant (admins
// excepted). A tenant that attaches by resubmitting the identical grid
// gains read access to the shared sweep but still cannot cancel it.
func TestSweepAccessScopedToTenant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	keyfile := `{"tenants": [{"id": "lab-a", "key": "ka"}, {"id": "lab-b", "key": "kb"}, {"id": "ops", "key": "ko", "admin": true}]}`
	if err := os.WriteFile(path, []byte(keyfile), 0o600); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	ctl, err := tenant.NewController(tenant.Config{Path: path, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, Metrics: reg, Tenants: ctl})
	sm := NewManager(Config{Service: svc, Metrics: reg})
	root := http.NewServeMux()
	root.Handle("/", service.NewHandler(svc, "test", nil, nil))
	Register(root, sm)
	srv := httptest.NewServer(root)
	defer srv.Close()

	do := func(method, path, key string, body string) int {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	grid := `{"n": [20, 30], "attack": ["none", "drop"], "trials": 2, "seed": 7, "workers": 2}`
	if code := do("POST", "/v1/sweeps", "ka", grid); code != http.StatusAccepted {
		t.Fatalf("submit as lab-a -> %d, want 202", code)
	}
	const id = "/v1/sweeps/s000001"

	// Reads and results: owner and admin yes, the other tenant 404.
	for _, tc := range []struct {
		key  string
		want int
	}{{"ka", 200}, {"ko", 200}, {"kb", 404}} {
		if code := do("GET", id, tc.key, ""); code != tc.want {
			t.Fatalf("GET sweep as %q -> %d, want %d", tc.key, code, tc.want)
		}
		if code := do("GET", id+"/results", tc.key, ""); code != tc.want {
			t.Fatalf("GET results as %q -> %d, want %d", tc.key, code, tc.want)
		}
	}
	// Cross-tenant cancel is the destructive path: 404, sweep untouched.
	if code := do("DELETE", id, "kb", ""); code != http.StatusNotFound {
		t.Fatalf("DELETE as lab-b -> %d, want 404", code)
	}

	// lab-b resubmits the identical grid: it attaches to the live sweep
	// (or, if the sweep already finished, starts its own — both 202) and
	// may now poll what it was handed back; cancel stays owner-only.
	if code := do("POST", "/v1/sweeps", "kb", grid); code != http.StatusAccepted {
		t.Fatalf("attach submit as lab-b -> %d, want 202", code)
	}
	sw, ok := sm.Get("s000001")
	if !ok {
		t.Fatal("sweep s000001 missing")
	}
	if sw.Accessible("lab-b") {
		if code := do("GET", id, "kb", ""); code != http.StatusOK {
			t.Fatalf("GET attached sweep as lab-b -> %d, want 200", code)
		}
		if code := do("DELETE", id, "kb", ""); code != http.StatusNotFound {
			t.Fatalf("DELETE attached sweep as lab-b -> %d, want 404 (read access must not grant cancel)", code)
		}
	}
	if code := do("DELETE", id, "ka", ""); code != http.StatusOK {
		t.Fatalf("DELETE as owner -> %d, want 200", code)
	}
	drainAll(t, sm, svc)
}

// TestSweepSubmitRateLimited: sweep submission itself pays the
// tenant's rate bucket, and the rejection is an AdmissionError the
// HTTP layer can turn into 429 + Retry-After.
func TestSweepSubmitRateLimited(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(`{"tenants": [{"id": "lab", "key": "k", "rate": 0.1, "burst": 1}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	ctl, err := tenant.NewController(tenant.Config{Path: path, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, Metrics: reg, Tenants: ctl})
	sm := NewManager(Config{Service: svc, Metrics: reg})

	lab, _ := ctl.Authenticate("k")
	// Burst of 1: the sweep consumes it; its cells ride the submitCell
	// retry loop, so the sweep still completes, just paced by the bucket.
	sw, err := sm.SubmitAs(lab, Grid{N: []int{20}, Trials: 1, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatalf("first SubmitAs: %v", err)
	}
	if _, err := sm.SubmitAs(lab, smallGrid()); err == nil {
		t.Fatal("second sweep admitted with an empty bucket")
	} else {
		var adm *tenant.AdmissionError
		if !errors.As(err, &adm) || adm.Reason != tenant.ReasonRateLimited {
			t.Fatalf("second SubmitAs error = %v, want rate_limited AdmissionError", err)
		}
	}
	waitSweep(t, sw)
	drainAll(t, sm, svc)
}
