// Package synopsis implements the COUNT/SUM/AVERAGE-to-MIN conversion VMAT
// uses for robust aggregate queries (paper Section VIII), following the
// exponential-synopsis scheme of Mosk-Aoyama and Shah [17].
//
// A sensor x with reading v > 0 generates m independent synopses
// a_{1,x} .. a_{m,x}, each exponentially distributed with mean 1/v. The
// minimum of instance i across sensors, a_i^min, is Exp-distributed with
// rate equal to the true sum S, so 1/avg(a_i^min) estimates S. With
// m = Theta(eps^-2 log delta^-1) instances the estimate is an
// (eps, delta)-approximation.
//
// For security, synopses are not free random draws: they are derived
// deterministically from a PRG seeded by (query nonce || sensor ID ||
// instance || claimed reading). A malicious sensor therefore cannot report
// an arbitrarily small synopsis — any valid synopsis corresponds to some
// possible reading, which has precisely the same effect as lying about its
// own reading (allowed by the secure-aggregation problem definition). The
// base station verifies a reported synopsis by re-deriving it over the
// reading domain.
package synopsis

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/crypto"
	"repro/internal/topology"
)

// None is the synopsis value contributed by a sensor whose reading is zero
// (or whose predicate is false for COUNT queries): it never wins a MIN.
func None() float64 { return math.Inf(1) }

// Generate returns the deterministic synopsis of the given instance for a
// sensor with the given reading. It panics if reading <= 0; zero-reading
// sensors contribute None().
func Generate(nonce []byte, id topology.NodeID, reading int64, instance int) float64 {
	var g Generator
	g.init(nonce, reading)
	return g.Generate(id, instance)
}

// Vector returns the sensor's synopses for all m instances at once.
func Vector(nonce []byte, id topology.NodeID, reading int64, m int) []float64 {
	out := make([]float64, m)
	if reading <= 0 {
		for i := range out {
			out[i] = None()
		}
		return out
	}
	var g Generator
	g.init(nonce, reading)
	for i := range out {
		out[i] = g.Generate(id, i)
	}
	return out
}

// Generator derives synopses for a fixed (nonce, reading) across many
// (sensor, instance) pairs. It produces bit-identical values to Generate
// but amortizes the per-call setup: the PRG seed-hash input — the
// length-prefixed ("synopsis", nonce, id, instance, reading) encoding —
// is laid out and SHA-padded once, and each call patches only the eight
// id bytes and eight instance bytes before one two-block seed hash
// (hardware SHA when available). Estimator sweeps that touch millions of
// (sensor, instance) pairs (the Figure 8 accuracy experiment, COUNT
// verification at the base station) are the intended users.
type Generator struct {
	buf     [128]byte
	msgLen  int
	idOff   int
	instOff int
	mean    float64

	// Long nonces push the encoding past the two-block seed-hash limit;
	// those fall back to the general stream path per call (nonce and
	// reading retained for it). Protocol nonces are far below the limit.
	fallback bool
	nonce    []byte
	reading  int64
}

// NewGenerator returns a Generator for the given query nonce and claimed
// reading. It panics if reading <= 0 (zero-reading sensors contribute
// None() and derive nothing).
func NewGenerator(nonce []byte, reading int64) *Generator {
	g := new(Generator)
	g.init(nonce, reading)
	return g
}

func (g *Generator) init(nonce []byte, reading int64) {
	if reading <= 0 {
		panic(fmt.Sprintf("synopsis: reading must be positive, got %d", reading))
	}
	g.mean = 1 / float64(reading)
	g.reading = reading
	g.nonce = nonce
	// Length-prefixed layout: 8-byte big-endian length before each part,
	// mirroring crypto.HashOf. The id and instance fields sit at fixed
	// offsets once the nonce length is known.
	msgLen := 5*8 + len("synopsis") + len(nonce) + 3*8
	if msgLen > crypto.SeedMaxMsg {
		g.fallback = true
		return
	}
	msg := make([]byte, 0, msgLen)
	msg = appendLenPrefixed(msg, []byte("synopsis"))
	msg = appendLenPrefixed(msg, nonce)
	g.idOff = len(msg) + 8
	msg = appendLenPrefixed(msg, make([]byte, 8))
	g.instOff = len(msg) + 8
	msg = appendLenPrefixed(msg, make([]byte, 8))
	msg = appendLenPrefixed(msg, crypto.Int64(reading))
	g.msgLen = len(msg)
	crypto.Pad2Block(&g.buf, msg)
}

func appendLenPrefixed(b, part []byte) []byte {
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(part)))
	b = append(b, l[:]...)
	return append(b, part...)
}

// U53 returns the raw 53-bit uniform draw behind the (id, instance)
// synopsis: the value u with synopsis = -ln(1 - u/2^53) / reading.
// Because that map is monotone in u, minima can be tracked on raw draws
// and converted once at the end (see ValueFromU53), skipping a logarithm
// per pair.
func (g *Generator) U53(id topology.NodeID, instance int) uint64 {
	if g.fallback {
		stream := crypto.NewStream(
			[]byte("synopsis"),
			g.nonce,
			crypto.Uint64(uint64(id)),
			crypto.Uint64(uint64(instance)),
			crypto.Int64(g.reading),
		)
		return stream.Uint64() >> 11
	}
	binary.BigEndian.PutUint64(g.buf[g.idOff:], uint64(id))
	binary.BigEndian.PutUint64(g.buf[g.instOff:], uint64(instance))
	return crypto.FirstUint64(crypto.SeedHash2Block(&g.buf, g.msgLen)) >> 11
}

// Generate returns the (id, instance) synopsis, identically to the
// package-level Generate for the Generator's nonce and reading.
func (g *Generator) Generate(id topology.NodeID, instance int) float64 {
	return g.valueFromU53(g.U53(id, instance))
}

func (g *Generator) valueFromU53(u uint64) float64 {
	return -math.Log(1-float64(u)/(1<<53)) * g.mean
}

// ValueFromU53 converts a raw draw from U53 back to the synopsis value.
func (g *Generator) ValueFromU53(u uint64) float64 { return g.valueFromU53(u) }

// VerifyReading checks a reported synopsis value against the reading
// domain: it returns the reading in domain whose deterministic synopsis
// equals value, if any. The base station uses this to reject fabricated
// synopses that correspond to no possible reading. For a COUNT query the
// domain is just {1}.
func VerifyReading(nonce []byte, id topology.NodeID, value float64, instance int, domain []int64) (int64, bool) {
	for _, v := range domain {
		if v <= 0 {
			continue
		}
		if Generate(nonce, id, v, instance) == value {
			return v, true
		}
	}
	return 0, false
}

// EstimateSum applies the paper's estimator to the per-instance minima:
// with a^min = sum(mins)/m, the sum is estimated as 1/a^min. If every
// instance minimum is infinite (no sensor had a positive reading) the
// estimate is 0.
func EstimateSum(mins []float64) float64 {
	if len(mins) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range mins {
		if math.IsInf(v, 1) {
			return 0
		}
		total += v
	}
	if total == 0 {
		return math.Inf(1)
	}
	return float64(len(mins)) / total
}

// EstimateSumUnbiased applies the (m-1)/sum variant, which is the unbiased
// estimator for the rate of an exponential given m minima. The paper's
// text uses the m/sum form; this variant backs the estimator ablation
// bench.
func EstimateSumUnbiased(mins []float64) float64 {
	if len(mins) <= 1 {
		return EstimateSum(mins)
	}
	total := 0.0
	for _, v := range mins {
		if math.IsInf(v, 1) {
			return 0
		}
		total += v
	}
	if total == 0 {
		return math.Inf(1)
	}
	return float64(len(mins)-1) / total
}

// NumInstances returns an m = Theta(eps^-2 log delta^-1) instance count
// sufficient for an (eps, delta)-approximation. The constant follows the
// standard Chernoff-style analysis of exponential minima sketches.
func NumInstances(eps, delta float64) int {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("synopsis: eps and delta must be in (0,1), got %g, %g", eps, delta))
	}
	m := int(math.Ceil(8 / (eps * eps) * math.Log(2/delta)))
	if m < 1 {
		m = 1
	}
	return m
}

// RelativeError returns |est-truth|/truth; truth must be nonzero.
func RelativeError(est, truth float64) float64 {
	return math.Abs(est-truth) / math.Abs(truth)
}

// MergeMins folds a second vector of per-instance values into acc,
// keeping the element-wise minimum. It is the in-network aggregation
// operator for synopsis vectors.
func MergeMins(acc, other []float64) {
	for i := range acc {
		if i < len(other) && other[i] < acc[i] {
			acc[i] = other[i]
		}
	}
}
