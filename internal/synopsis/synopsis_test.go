package synopsis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestGenerateDeterministic(t *testing.T) {
	nonce := []byte("query-7")
	a := Generate(nonce, 3, 5, 0)
	b := Generate(nonce, 3, 5, 0)
	if a != b {
		t.Fatalf("same inputs gave %g and %g", a, b)
	}
}

func TestGenerateSeparatesInputs(t *testing.T) {
	nonce := []byte("n")
	base := Generate(nonce, 1, 1, 0)
	if Generate(nonce, 2, 1, 0) == base {
		t.Fatal("different sensor IDs gave identical synopses")
	}
	if Generate(nonce, 1, 2, 0) == base {
		t.Fatal("different readings gave identical synopses")
	}
	if Generate(nonce, 1, 1, 1) == base {
		t.Fatal("different instances gave identical synopses")
	}
	if Generate([]byte("other"), 1, 1, 0) == base {
		t.Fatal("different nonces gave identical synopses")
	}
}

func TestGeneratePanicsOnNonPositiveReading(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with reading 0 did not panic")
		}
	}()
	Generate([]byte("n"), 1, 0, 0)
}

func TestGeneratePositive(t *testing.T) {
	f := func(seed uint64, inst uint8) bool {
		v := Generate([]byte{byte(seed)}, topology.NodeID(seed%97), int64(seed%50+1), int(inst))
		return v >= 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorZeroReadingIsNone(t *testing.T) {
	v := Vector([]byte("n"), 4, 0, 5)
	for i, x := range v {
		if !math.IsInf(x, 1) {
			t.Fatalf("instance %d of zero reading = %g, want +Inf", i, x)
		}
	}
}

func TestVectorMatchesGenerate(t *testing.T) {
	nonce := []byte("q")
	v := Vector(nonce, 9, 3, 4)
	for i := range v {
		if v[i] != Generate(nonce, 9, 3, i) {
			t.Fatalf("Vector[%d] disagrees with Generate", i)
		}
	}
}

func TestVerifyReadingAcceptsHonest(t *testing.T) {
	nonce := []byte("count-query")
	val := Generate(nonce, 12, 1, 7)
	got, ok := VerifyReading(nonce, 12, val, 7, []int64{1})
	if !ok || got != 1 {
		t.Fatalf("VerifyReading rejected honest count synopsis: %v %v", got, ok)
	}
}

func TestVerifyReadingRejectsFabricated(t *testing.T) {
	nonce := []byte("count-query")
	// An adversary reporting an arbitrary tiny value is caught.
	if _, ok := VerifyReading(nonce, 12, 1e-12, 0, []int64{1}); ok {
		t.Fatal("fabricated synopsis accepted")
	}
}

func TestVerifyReadingSumDomain(t *testing.T) {
	nonce := []byte("sum-query")
	domain := []int64{1, 2, 3, 4, 5}
	val := Generate(nonce, 3, 4, 2)
	got, ok := VerifyReading(nonce, 3, val, 2, domain)
	if !ok || got != 4 {
		t.Fatalf("VerifyReading = %d, %v; want 4, true", got, ok)
	}
	// Wrong instance does not verify.
	if _, ok := VerifyReading(nonce, 3, val, 3, domain); ok {
		t.Fatal("synopsis verified under wrong instance")
	}
	// Non-positive domain entries are skipped, not panicked on.
	if _, ok := VerifyReading(nonce, 3, val, 2, []int64{0, -1, 4}); !ok {
		t.Fatal("domain with non-positive entries broke verification")
	}
}

func TestEstimateSumEmptyAndInf(t *testing.T) {
	if got := EstimateSum(nil); got != 0 {
		t.Fatalf("EstimateSum(nil) = %g, want 0", got)
	}
	if got := EstimateSum([]float64{math.Inf(1), math.Inf(1)}); got != 0 {
		t.Fatalf("EstimateSum(all inf) = %g, want 0 (empty network)", got)
	}
}

func TestEstimateSumAccuracyCount(t *testing.T) {
	// Simulate a COUNT of c sensors with m=100 synopses and check the
	// average relative error over trials is below ~10% (the Figure 8
	// headline).
	const m = 100
	const c = 500
	const trials = 50
	totalErr := 0.0
	for trial := 0; trial < trials; trial++ {
		nonce := []byte{byte(trial), byte(trial >> 8), 0xAA}
		mins := make([]float64, m)
		for i := range mins {
			mins[i] = math.Inf(1)
		}
		for id := topology.NodeID(1); id <= c; id++ {
			MergeMins(mins, Vector(nonce, id, 1, m))
		}
		totalErr += RelativeError(EstimateSum(mins), c)
	}
	avg := totalErr / trials
	if avg > 0.15 {
		t.Fatalf("average relative error %.3f too high for m=%d", avg, m)
	}
}

func TestEstimateSumAccuracySum(t *testing.T) {
	// SUM of heterogeneous readings.
	const m = 200
	nonce := []byte("sum-trial")
	readings := []int64{5, 17, 42, 1, 99, 3, 8}
	var truth int64
	mins := make([]float64, m)
	for i := range mins {
		mins[i] = math.Inf(1)
	}
	for idx, r := range readings {
		truth += r
		MergeMins(mins, Vector(nonce, topology.NodeID(idx+1), r, m))
	}
	if err := RelativeError(EstimateSum(mins), float64(truth)); err > 0.35 {
		t.Fatalf("single-trial sum error %.3f implausibly high", err)
	}
}

func TestUnbiasedEstimatorLowerBias(t *testing.T) {
	// Over many trials the unbiased estimator's mean should sit closer to
	// the truth than the paper's m/sum form (which overestimates by
	// ~m/(m-1)).
	const m = 50
	const c = 200
	const trials = 400
	sumPlain, sumUnbiased := 0.0, 0.0
	for trial := 0; trial < trials; trial++ {
		nonce := []byte{byte(trial), byte(trial >> 8), 0xBB}
		mins := make([]float64, m)
		for i := range mins {
			mins[i] = math.Inf(1)
		}
		for id := topology.NodeID(1); id <= c; id++ {
			MergeMins(mins, Vector(nonce, id, 1, m))
		}
		sumPlain += EstimateSum(mins)
		sumUnbiased += EstimateSumUnbiased(mins)
	}
	biasPlain := math.Abs(sumPlain/trials - c)
	biasUnbiased := math.Abs(sumUnbiased/trials - c)
	if biasUnbiased > biasPlain {
		t.Fatalf("unbiased estimator bias %.2f exceeds plain %.2f", biasUnbiased, biasPlain)
	}
}

func TestNumInstancesMonotone(t *testing.T) {
	if NumInstances(0.1, 0.05) <= NumInstances(0.2, 0.05) {
		t.Fatal("tighter eps must need more instances")
	}
	if NumInstances(0.1, 0.01) <= NumInstances(0.1, 0.1) {
		t.Fatal("tighter delta must need more instances")
	}
}

func TestNumInstancesPanicsOnBadInput(t *testing.T) {
	for _, c := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NumInstances(%g,%g) did not panic", c[0], c[1])
				}
			}()
			NumInstances(c[0], c[1])
		}()
	}
}

func TestMergeMins(t *testing.T) {
	acc := []float64{1, 5, math.Inf(1)}
	MergeMins(acc, []float64{2, 3, 7})
	want := []float64{1, 3, 7}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("MergeMins = %v, want %v", acc, want)
		}
	}
	// Shorter other vector leaves the tail untouched.
	MergeMins(acc, []float64{0})
	if acc[0] != 0 || acc[1] != 3 {
		t.Fatalf("MergeMins with short vector = %v", acc)
	}
}

func TestEstimatorScaleInvariance(t *testing.T) {
	// Property: doubling every reading roughly doubles the estimate.
	const m = 300
	nonce := []byte("scale")
	mins1 := make([]float64, m)
	mins2 := make([]float64, m)
	for i := range mins1 {
		mins1[i], mins2[i] = math.Inf(1), math.Inf(1)
	}
	for id := topology.NodeID(1); id <= 50; id++ {
		MergeMins(mins1, Vector(nonce, id, 10, m))
		MergeMins(mins2, Vector(nonce, id, 20, m))
	}
	ratio := EstimateSum(mins2) / EstimateSum(mins1)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("scale ratio %.2f, want ~2", ratio)
	}
}
