package tenant

import (
	"sync"
	"time"
)

// bucket is a token bucket: capacity `burst` tokens, refilled at `rate`
// tokens per second. rate <= 0 means unlimited — take always succeeds.
//
// The bucket is the source of the Retry-After durations the front door
// hands to clients: when a take fails, the deficit divided by the
// refill rate is exactly how long the caller must wait for the next
// token, so 429 responses carry an honest schedule instead of making
// every rejected client guess (and retry in lockstep).
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 = unlimited
	burst  float64 // capacity; >= 1 when rate > 0
	tokens float64
	last   time.Time
}

// configure resets the bucket's limits, clamping the stored balance to
// the new burst. Existing debt/credit survives a hot reload so a tenant
// cannot launder its rate limit by re-uploading the keyfile.
func (b *bucket) configure(rate float64, burst int, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	first := b.last.IsZero()
	b.refillLocked(now)
	b.rate = rate
	b.burst = float64(burst)
	if b.burst < 1 {
		b.burst = 1
	}
	if first || b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// refillLocked advances the balance to now. Callers hold b.mu.
func (b *bucket) refillLocked(now time.Time) {
	if !b.last.IsZero() && b.rate > 0 {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take consumes one token. When the bucket is empty it reports ok=false
// and how long until the next token is available.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true, 0
	}
	b.refillLocked(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// refund returns one token taken by take whose submission was then
// rejected downstream (full queue, quota, draining manager), clamped
// to burst. Without it, back-pressure retries against a full queue
// would burn the tenant's whole rate budget and turn capacity
// rejections into rate-limit ones for its other clients.
func (b *bucket) refund(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return
	}
	b.refillLocked(now)
	b.tokens++
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// retryAfter reports how long until one token is available without
// consuming anything (0 when a take would succeed right now).
func (b *bucket) retryAfter(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return 0
	}
	b.refillLocked(now)
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
