package tenant

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// Sentinel errors. AdmissionError wraps one of the rejection sentinels,
// so errors.Is works against both the typed error and the sentinel
// (internal/service re-exports ErrQueueFull as service.ErrQueueFull for
// its pre-tenancy callers).
var (
	// ErrUnauthorized means the request presented no API key, or one
	// that matches no tenant, to a server running with a keyfile.
	ErrUnauthorized = errors.New("tenant: unknown or missing API key")
	// ErrQueueFull means the global job queue is at capacity.
	ErrQueueFull = errors.New("tenant: job queue is full")
	// ErrRateLimited means the tenant's submissions/sec token bucket is
	// empty.
	ErrRateLimited = errors.New("tenant: submission rate limit exceeded")
	// ErrQuota means a per-tenant quota (max queued jobs, max concurrent
	// sweep cells) is exhausted.
	ErrQuota = errors.New("tenant: per-tenant quota exceeded")
	// ErrShed means the queue is in the shedding tier and this tenant is
	// over its fair share, so its submission was dropped to protect the
	// others.
	ErrShed = errors.New("tenant: shedding load")
	// ErrQueueClosed means the queue has stopped admitting because the
	// server is draining. Unlike the 429-class sentinels, retrying
	// cannot help; HTTP maps it to 503.
	ErrQueueClosed = errors.New("tenant: queue closed to new work (draining)")
)

// Rejection reasons, used as the reason label on
// tenant_rejected_total and service_jobs_rejected_total.
const (
	ReasonRateLimited = "rate_limited"
	ReasonMaxQueued   = "max_queued"
	ReasonSweepCells  = "sweep_cells"
	ReasonShed        = "shed"
	ReasonQueueFull   = "queue_full"
	ReasonDraining    = "draining"
)

// AdmissionError is a 429-class rejection: the request was well-formed
// and authenticated but the front door refused it for capacity reasons.
// After is the suggested wait before retrying — derived from the
// tenant's token-bucket refill time — which HTTP surfaces as a
// Retry-After header and the sweep submitter honors instead of blind
// jitter.
type AdmissionError struct {
	Sentinel error  // one of ErrQueueFull, ErrRateLimited, ErrQuota, ErrShed
	Tenant   string // tenant ID (already sanitized)
	Reason   string // metric label: see the Reason* constants
	After    time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%v (tenant %q, retry after %s)", e.Sentinel, e.Tenant, e.After)
}

// Unwrap lets errors.Is match the wrapped sentinel.
func (e *AdmissionError) Unwrap() error { return e.Sentinel }

// RetryAfter returns the suggested wait before retrying.
func (e *AdmissionError) RetryAfter() time.Duration { return e.After }

// RetryAfterHeader formats After as a Retry-After header value: whole
// seconds rounded up, floored at 1 (a zero header invites an immediate
// re-hammer).
func (e *AdmissionError) RetryAfterHeader() string {
	secs := int64(e.After+time.Second-1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
