package tenant

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// defaultRetryAfter is the Retry-After suggestion for capacity
// rejections when the tenant's rate bucket offers no schedule (an
// unlimited tenant bouncing off a full queue): long enough not to
// invite a hammer, short enough that a freed worker slot is picked up
// promptly.
const defaultRetryAfter = time.Second

// Admission tiers, in escalating order. The queue reports the tier in
// Status and /healthz surfaces it: "ok" is normal, "degraded" warns
// that back-pressure is building, "shedding" means over-share tenants
// are already being bounced so the rest stay live.
const (
	TierOK       = "ok"
	TierDegraded = "degraded"
	TierShedding = "shedding"
)

// QueueConfig configures a Queue. Zero values pick serving defaults.
type QueueConfig struct {
	// Capacity bounds the total queued items across all tenants.
	// Default 64.
	Capacity int
	// DegradedFrac is the occupancy at which Status reports the
	// degraded tier. Default 0.75.
	DegradedFrac float64
	// ShedFrac is the occupancy at which admission starts shedding:
	// a push is admitted only while the tenant's own backlog stays
	// within its fair share of the queue (capacity x weight / total
	// active weight). Low-weight tenants have small shares, so they
	// shed first; a heavy, high-weight tenant can still fill its slice.
	// Default 0.9.
	ShedFrac float64
}

// tq is one tenant's FIFO plus its deficit-round-robin credit.
type tq[T any] struct {
	t      *Tenant
	items  []T
	head   int // index of the front item (amortized O(1) pop)
	credit int
}

func (s *tq[T]) len() int { return len(s.items) - s.head }

// Queue is the weighted fair queue that replaces the serving layer's
// single global FIFO: per-tenant FIFOs drained by deficit round robin.
// Each ring visit grants a tenant `weight` pops, so when several
// tenants have backlog their drain rates converge to the ratio of
// their weights, and a light tenant's first job waits at most one ring
// round (the sum of the other active tenants' weights) — never behind
// the whole backlog of a heavy one.
//
// Push never blocks: capacity and quota pressure surface as
// AdmissionError so the HTTP layer can turn them into fast 429s with
// Retry-After. Pop blocks until an item, or until Close with the queue
// empty — draining pops out every admitted item first.
type Queue[T any] struct {
	ctl *Controller
	cfg QueueConfig

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	size   int
	shards map[string]*tq[T]
	ring   []*tq[T] // tenants with backlog, in round-robin order
	cur    int      // ring index currently being served
}

// NewQueue returns an empty fair queue reporting per-tenant depth
// gauges into ctl's registry.
func NewQueue[T any](ctl *Controller, cfg QueueConfig) *Queue[T] {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.DegradedFrac <= 0 || cfg.DegradedFrac > 1 {
		cfg.DegradedFrac = 0.75
	}
	if cfg.ShedFrac <= 0 || cfg.ShedFrac > 1 {
		cfg.ShedFrac = 0.9
	}
	if ctl == nil {
		ctl = Open(nil)
	}
	q := &Queue[T]{ctl: ctl, cfg: cfg, shards: map[string]*tq[T]{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// thresholds in items (computed, not stored: Capacity is fixed).
func (q *Queue[T]) degradedAt() int { return threshold(q.cfg.Capacity, q.cfg.DegradedFrac) }
func (q *Queue[T]) shedAt() int     { return threshold(q.cfg.Capacity, q.cfg.ShedFrac) }

func threshold(capacity int, frac float64) int {
	at := int(frac * float64(capacity))
	if at < 1 {
		at = 1
	}
	if at > capacity {
		at = capacity
	}
	return at
}

// Push admits one item for tenant t. A closed queue returns
// ErrQueueClosed — shutdown, not back-pressure, so callers don't retry
// against a queue that will never admit again. The capacity errors are
// all *AdmissionError: ErrQueueFull at global capacity, ErrQuota past
// the tenant's MaxQueued, ErrShed when the shedding tier is active and
// the tenant is over its fair share.
func (q *Queue[T]) Push(t *Tenant, item T) error {
	lim := t.Limits()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.ctl.Reject(t, ReasonDraining)
		return ErrQueueClosed
	}
	if q.size >= q.cfg.Capacity {
		q.mu.Unlock()
		q.ctl.Reject(t, ReasonQueueFull)
		return &AdmissionError{Sentinel: ErrQueueFull, Tenant: t.id, Reason: ReasonQueueFull, After: q.ctl.RetryAfter(t, defaultRetryAfter)}
	}
	s := q.shards[t.id]
	depth := 0
	if s != nil {
		depth = s.len()
	}
	if lim.MaxQueued > 0 && depth >= lim.MaxQueued {
		q.mu.Unlock()
		q.ctl.Reject(t, ReasonMaxQueued)
		return &AdmissionError{Sentinel: ErrQuota, Tenant: t.id, Reason: ReasonMaxQueued, After: q.ctl.RetryAfter(t, defaultRetryAfter)}
	}
	if q.size >= q.shedAt() && depth+1 > q.fairShareLocked(t, lim.Weight) {
		q.mu.Unlock()
		q.ctl.Reject(t, ReasonShed)
		return &AdmissionError{Sentinel: ErrShed, Tenant: t.id, Reason: ReasonShed, After: q.ctl.RetryAfter(t, defaultRetryAfter)}
	}
	if s == nil {
		s = &tq[T]{t: t}
		q.shards[t.id] = s
	}
	if s.len() == 0 {
		// Joining the ring: insert just before the position being
		// served, i.e. last in the current round — a newcomer waits one
		// round, it does not jump the tenants already in line.
		q.ring = append(q.ring, nil)
		copy(q.ring[q.cur+1:], q.ring[q.cur:])
		q.ring[q.cur] = s
		q.cur++
		if q.cur >= len(q.ring) {
			q.cur = 0
		}
		s.credit = 0
	}
	s.items = append(s.items, item)
	q.size++
	q.mu.Unlock()
	q.depthGauge(t).Inc()
	q.cond.Signal()
	return nil
}

// fairShareLocked is the most items tenant t may hold under shedding:
// its weight's slice of capacity relative to every tenant currently
// holding backlog (plus t itself), floored at 1 so a tenant is never
// starved outright below full.
func (q *Queue[T]) fairShareLocked(t *Tenant, weight int) int {
	total := 0
	for _, s := range q.ring {
		if s.t != t {
			total += s.t.Weight()
		}
	}
	total += weight
	share := q.cfg.Capacity * weight / total
	if share < 1 {
		share = 1
	}
	return share
}

// Pop removes the next item under the deficit-round-robin schedule,
// blocking while the queue is empty. ok=false means the queue was
// closed and fully drained.
func (q *Queue[T]) Pop() (item T, ok bool) {
	q.mu.Lock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		q.mu.Unlock()
		var zero T
		return zero, false
	}
	s := q.ring[q.cur]
	if s.credit <= 0 {
		s.credit = s.t.Weight()
	}
	item = s.items[s.head]
	var zero T
	s.items[s.head] = zero // release the reference
	s.head++
	s.credit--
	q.size--
	if s.len() == 0 {
		s.items = s.items[:0]
		s.head = 0
		s.credit = 0
		q.ring = append(q.ring[:q.cur], q.ring[q.cur+1:]...)
		if q.cur >= len(q.ring) {
			q.cur = 0
		}
	} else if s.credit == 0 {
		q.cur++
		if q.cur >= len(q.ring) {
			q.cur = 0
		}
	}
	t := s.t
	q.mu.Unlock()
	q.depthGauge(t).Dec()
	return item, true
}

// Close stops admission. Blocked and future Pops drain the remaining
// items, then report ok=false.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len returns the total queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Cap returns the global capacity.
func (q *Queue[T]) Cap() int { return q.cfg.Capacity }

// Status is the queue's contribution to /healthz.
type Status struct {
	// Tier is "ok", "degraded", or "shedding".
	Tier string `json:"tier"`
	// QueueDepth and QueueCapacity describe global occupancy.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// ActiveTenants is the number of tenants with queued work.
	ActiveTenants int `json:"active_tenants"`
}

// Status snapshots the queue's admission tier and occupancy.
func (q *Queue[T]) Status() Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	tier := TierOK
	switch {
	case q.size >= q.shedAt():
		tier = TierShedding
	case q.size >= q.degradedAt():
		tier = TierDegraded
	}
	return Status{
		Tier:          tier,
		QueueDepth:    q.size,
		QueueCapacity: q.cfg.Capacity,
		ActiveTenants: len(q.ring),
	}
}

func (q *Queue[T]) depthGauge(t *Tenant) *metrics.Gauge {
	return q.ctl.reg.Gauge(MetricQueueDepth + `{tenant="` + t.id + `"}`)
}
