// Package tenant is the multi-tenant front door for the serving layer:
// API-key authentication, per-tenant token-bucket rate limits and
// quotas, weighted fair queueing, and tiered load shedding.
//
// The ROADMAP's north star is one fleet shared by many independent
// experimenters. Before this package, vmat-server had a single global
// bounded queue and no notion of *who* was submitting — one greedy
// client could fill the queue and starve everyone else into 429s. The
// front door fixes that in four layers:
//
//   - Identity: tenants are loaded from a JSON keyfile (see Keyfile)
//     and authenticate with `Authorization: Bearer <key>`. Key
//     comparison is constant-time over SHA-256 digests, and every
//     candidate is compared (no early exit), so response timing leaks
//     nothing about which prefix matched. Without a keyfile the
//     controller runs open: everything maps to the anonymous tenant
//     with unlimited limits — the pre-tenancy dev behavior.
//   - Rate: each tenant has a submissions/sec token bucket. An empty
//     bucket rejects with ErrRateLimited and an honest Retry-After
//     (the bucket's refill time).
//   - Quota: per-tenant caps on queued jobs and concurrent sweep
//     cells bound how much of the shared queue one tenant can own.
//   - Fairness: the Queue in this package replaces the global FIFO
//     with per-tenant FIFOs drained by deficit round robin, so a
//     light tenant's first job never waits behind a heavy tenant's
//     backlog; under pressure the queue sheds over-share (and
//     therefore low-weight) tenants first.
//
// Live state (bucket balances, in-flight counts) is keyed by tenant ID
// and survives SIGHUP keyfile reloads, so editing a weight does not
// reset anyone's rate limit.
package tenant

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// AnonymousID is the tenant ID assigned to unauthenticated requests
// (when allowed) and to internal submissions with no tenant attached
// (recovered sweeps, library callers using the pre-tenancy API).
const AnonymousID = "anonymous"

// Per-tenant metric names. All carry a tenant label; rejections add a
// reason label, e.g. `tenant_rejected_total{tenant="lab",reason="rate_limited"}`.
const (
	MetricRequests   = "tenant_requests_total"
	MetricRejected   = "tenant_rejected_total"
	MetricQueueDepth = "tenant_queue_depth"
	MetricInflight   = "tenant_inflight"
	MetricSweepCells = "tenant_sweep_cells_inflight"
	MetricReloads    = "tenant_keyfile_reloads_total"
)

// Limits are one tenant's knobs. The zero value of every field means
// "default / unlimited", so a keyfile only states what it cares about.
type Limits struct {
	// Weight is the tenant's fair-queue share (default 1). A
	// weight-3 tenant drains three jobs for every one of a weight-1
	// tenant when both have backlog, and keeps a 3x larger slice of the
	// queue before shedding kicks in.
	Weight int `json:"weight,omitempty"`
	// Rate is the sustained submissions/sec the tenant may make
	// (jobs and sweep cells both count). 0 = unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket capacity: how many submissions may
	// arrive back-to-back before Rate applies. Default max(1, ceil(Rate)).
	Burst int `json:"burst,omitempty"`
	// MaxQueued caps the tenant's jobs sitting in the fair queue.
	// 0 = bounded only by the global queue.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxSweepCells caps the tenant's sweep cells in flight at once,
	// across all its sweeps. 0 = bounded only by each sweep's own
	// in-flight cap.
	MaxSweepCells int `json:"max_sweep_cells,omitempty"`
}

// normalize fills defaults in place.
func (l *Limits) normalize() {
	if l.Weight <= 0 {
		l.Weight = 1
	}
	if l.Burst <= 0 {
		l.Burst = int(l.Rate)
		if float64(l.Burst) < l.Rate {
			l.Burst++
		}
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
}

// KeyfileTenant is one tenant entry in the keyfile.
type KeyfileTenant struct {
	// ID names the tenant in metrics, logs, and quotas. Restricted to
	// [a-zA-Z0-9_.-] so a hostile keyfile cannot inject label
	// characters into the /metrics exposition.
	ID string `json:"id"`
	// Key is the bearer token the tenant authenticates with.
	Key string `json:"key"`
	// Admin marks an operator tenant: it may read and cancel every
	// tenant's jobs and sweeps, not only its own. The anonymous tenant
	// can never be admin.
	Admin bool `json:"admin,omitempty"`
	Limits
}

// Keyfile is the JSON document the -tenants flag points at:
//
//	{
//	  "anonymous": {"weight": 1, "rate": 2},
//	  "tenants": [
//	    {"id": "lab-a", "key": "...", "weight": 4, "rate": 20, "max_queued": 32},
//	    {"id": "lab-b", "key": "...", "rate": 5, "burst": 10, "max_sweep_cells": 4}
//	  ]
//	}
//
// The anonymous section is optional: present, unauthenticated requests
// are admitted under those limits; absent, requests without a valid key
// get 401. SIGHUP reloads the file in place.
type Keyfile struct {
	// Anonymous, when non-nil, admits unauthenticated requests under
	// these limits.
	Anonymous *Limits `json:"anonymous,omitempty"`
	// Tenants are the keyed tenants.
	Tenants []KeyfileTenant `json:"tenants"`
}

// Tenant is one live tenant: its identity, current limits, and runtime
// state (token bucket, in-flight sweep cells). Tenants are created by
// the Controller and survive keyfile reloads.
type Tenant struct {
	id string

	mu         sync.Mutex
	limits     Limits
	keyHash    [sha256.Size]byte
	keyed      bool // false for the anonymous tenant
	admin      bool // operator tenant: may touch every tenant's resources
	sweepCells int  // in-flight sweep cells, bounded by limits.MaxSweepCells

	bucket bucket
}

// ID returns the tenant's (sanitized) identifier.
func (t *Tenant) ID() string { return t.id }

// Weight returns the tenant's current fair-queue weight.
func (t *Tenant) Weight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limits.Weight
}

// Limits returns a copy of the tenant's current limits.
func (t *Tenant) Limits() Limits {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limits
}

// Admin reports whether the tenant is an operator (keyfile
// `"admin": true`).
func (t *Tenant) Admin() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.admin
}

// CanAccess reports whether the tenant may read or mutate a resource
// owned by ownerID: its own resources always, everyone's when it is an
// admin. Job and sweep handlers answer 404 when this is false, so one
// tenant cannot enumerate or cancel another's work through the
// sequential IDs.
func (t *Tenant) CanAccess(ownerID string) bool {
	return t.id == ownerID || t.Admin()
}

// Config configures a Controller.
type Config struct {
	// Path is the JSON keyfile. Empty runs the controller open: no
	// authentication, every request is the anonymous tenant, unlimited.
	Path string
	// Metrics receives the per-tenant counters and gauges. Nil creates
	// a private registry.
	Metrics *metrics.Registry
	// Log receives operational notices (reloads). Nil discards them.
	Log func(format string, args ...any)
	// Now overrides the clock for tests. Nil uses time.Now.
	Now func() time.Time
}

// Controller owns the tenant table: authentication, rate/quota
// admission, and the per-tenant metrics. All methods are safe for
// concurrent use.
type Controller struct {
	reg  *metrics.Registry
	log  func(format string, args ...any)
	now  func() time.Time
	path string

	mu      sync.Mutex
	tenants map[string]*Tenant // by ID; holds live state across reloads
	keyed   []*Tenant          // authentication candidates, scanned in full
	anon    *Tenant
	anonOK  bool // unauthenticated requests allowed
}

// NewController loads cfg.Path (when set) and returns the controller.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{
		reg:     cfg.Metrics,
		log:     cfg.Log,
		now:     cfg.Now,
		path:    cfg.Path,
		tenants: map[string]*Tenant{},
	}
	// The anonymous tenant always exists as an object — internal
	// callers (recovered sweeps, the pre-tenancy Submit API) need an
	// identity to run under even when HTTP disallows it. Open mode and
	// keyfiles without an anonymous section leave it unlimited.
	c.anon = &Tenant{id: AnonymousID, limits: Limits{Weight: 1}}
	c.anonOK = true
	if cfg.Path != "" {
		if err := c.Reload(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Open returns a controller with no keyfile: every request is the
// anonymous tenant with unlimited limits — the pre-tenancy behavior.
func Open(reg *metrics.Registry) *Controller {
	c, err := NewController(Config{Metrics: reg})
	if err != nil { // unreachable: no path, nothing to fail
		panic(err)
	}
	return c
}

// Parse decodes and validates a keyfile document.
func Parse(data []byte) (*Keyfile, error) {
	var kf Keyfile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&kf); err != nil {
		return nil, fmt.Errorf("tenant: invalid keyfile: %w", err)
	}
	seen := map[string]bool{}
	seenKeys := map[[sha256.Size]byte]string{}
	for i := range kf.Tenants {
		kt := &kf.Tenants[i]
		id := metrics.SanitizeLabel(kt.ID)
		if id == "" {
			return nil, fmt.Errorf("tenant: keyfile entry %d has no usable id (after restricting to [a-zA-Z0-9_.-])", i)
		}
		if id != kt.ID {
			return nil, fmt.Errorf("tenant: keyfile id %q contains characters outside [a-zA-Z0-9_.-]", kt.ID)
		}
		if id == AnonymousID {
			return nil, fmt.Errorf("tenant: %q is reserved; use the top-level anonymous section", AnonymousID)
		}
		if seen[id] {
			return nil, fmt.Errorf("tenant: duplicate id %q in keyfile", id)
		}
		seen[id] = true
		if kt.Key == "" {
			return nil, fmt.Errorf("tenant: %q has an empty key", id)
		}
		// Two tenants sharing one bearer key would silently attribute all
		// of the second's traffic (and limits, and metrics) to the first.
		digest := sha256.Sum256([]byte(kt.Key))
		if other, dup := seenKeys[digest]; dup {
			return nil, fmt.Errorf("tenant: %q and %q share the same key", other, id)
		}
		seenKeys[digest] = id
		kt.Limits.normalize()
	}
	return &kf, nil
}

// Reload re-reads the keyfile and swaps the tenant set in place. Live
// state for surviving IDs (bucket balance, in-flight counts) is kept;
// removed tenants stop authenticating immediately. An unreadable or
// invalid file leaves the current set untouched and returns the error —
// a bad SIGHUP must not lock every client out.
func (c *Controller) Reload() error {
	if c.path == "" {
		return errors.New("tenant: no keyfile configured")
	}
	data, err := os.ReadFile(c.path)
	if err != nil {
		return fmt.Errorf("tenant: read keyfile: %w", err)
	}
	kf, err := Parse(data)
	if err != nil {
		return err
	}
	now := c.now()

	c.mu.Lock()
	defer c.mu.Unlock()
	next := map[string]*Tenant{}
	keyed := make([]*Tenant, 0, len(kf.Tenants))
	for _, kt := range kf.Tenants {
		t := c.tenants[kt.ID]
		if t == nil {
			t = &Tenant{id: kt.ID}
		}
		t.mu.Lock()
		t.limits = kt.Limits
		t.keyHash = sha256.Sum256([]byte(kt.Key))
		t.keyed = true
		t.admin = kt.Admin
		t.mu.Unlock()
		t.bucket.configure(kt.Rate, kt.Burst, now)
		next[kt.ID] = t
		keyed = append(keyed, t)
	}
	if kf.Anonymous != nil {
		lim := *kf.Anonymous
		lim.normalize()
		c.anon.mu.Lock()
		c.anon.limits = lim
		c.anon.mu.Unlock()
		c.anon.bucket.configure(lim.Rate, lim.Burst, now)
		c.anonOK = true
	} else {
		// The anonymous section is gone: unauthenticated HTTP is denied,
		// and the internal submitters still running as anonymous
		// (recovered sweeps, library Submit) revert to the default
		// unlimited limits rather than keeping the removed section's
		// rate and quotas.
		c.anon.mu.Lock()
		c.anon.limits = Limits{Weight: 1}
		c.anon.mu.Unlock()
		c.anon.bucket.configure(0, 1, now)
		c.anonOK = false
	}
	c.tenants = next
	c.keyed = keyed
	c.reg.Counter(MetricReloads).Inc()
	c.log("tenant: loaded %d tenant(s) from %s (anonymous %s)",
		len(keyed), c.path, map[bool]string{true: "allowed", false: "denied"}[c.anonOK])
	return nil
}

// Registry returns the registry the controller reports into.
func (c *Controller) Registry() *metrics.Registry { return c.reg }

// Anonymous returns the anonymous tenant (always non-nil; whether HTTP
// requests may use it is FromRequest's business).
func (c *Controller) Anonymous() *Tenant {
	return c.anon
}

// Len returns the number of keyed tenants.
func (c *Controller) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.keyed)
}

// Authenticate resolves a bearer key to its tenant. An empty key maps
// to the anonymous tenant when the keyfile allows it. The presented
// key's SHA-256 digest is compared against every keyed tenant's digest
// in constant time with no early exit, so neither the comparison nor
// the scan order leaks key material through response timing.
func (c *Controller) Authenticate(key string) (*Tenant, error) {
	c.mu.Lock()
	keyed := c.keyed
	anonOK := c.anonOK
	c.mu.Unlock()
	if key == "" {
		if anonOK {
			return c.anon, nil
		}
		return nil, ErrUnauthorized
	}
	digest := sha256.Sum256([]byte(key))
	var match *Tenant
	for _, t := range keyed {
		t.mu.Lock()
		hash := t.keyHash
		t.mu.Unlock()
		if subtle.ConstantTimeCompare(digest[:], hash[:]) == 1 && match == nil {
			match = t
		}
	}
	if match == nil {
		return nil, ErrUnauthorized
	}
	return match, nil
}

// FromRequest authenticates an HTTP request (`Authorization: Bearer
// <key>`; absent means anonymous) and counts it in
// tenant_requests_total. A malformed scheme or unknown key returns
// ErrUnauthorized, counted under tenant="unknown".
func (c *Controller) FromRequest(r *http.Request) (*Tenant, error) {
	key := ""
	if h := r.Header.Get("Authorization"); h != "" {
		const prefix = "bearer "
		if len(h) < len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
			c.countRequest("unknown")
			return nil, ErrUnauthorized
		}
		key = strings.TrimSpace(h[len(prefix):])
	}
	t, err := c.Authenticate(key)
	if err != nil {
		c.countRequest("unknown")
		return nil, err
	}
	c.countRequest(t.id)
	return t, nil
}

func (c *Controller) countRequest(id string) {
	c.reg.Counter(MetricRequests + `{tenant="` + id + `"}`).Inc()
}

// Reject counts one rejected submission for the tenant by reason.
func (c *Controller) Reject(t *Tenant, reason string) {
	c.reg.Counter(MetricRejected + `{tenant="` + t.id + `",reason="` + reason + `"}`).Inc()
}

// AdmitSubmission takes one token from the tenant's rate bucket,
// returning an AdmissionError with the bucket's refill time when it is
// empty. Every submission — job, sweep cell, cached or not — counts.
func (c *Controller) AdmitSubmission(t *Tenant) error {
	ok, after := t.bucket.take(c.now())
	if !ok {
		c.Reject(t, ReasonRateLimited)
		return &AdmissionError{Sentinel: ErrRateLimited, Tenant: t.id, Reason: ReasonRateLimited, After: after}
	}
	return nil
}

// RefundSubmission returns the token AdmitSubmission took when the
// submission was rejected downstream of the rate check (full queue,
// quota, shed, draining manager). Capacity back-pressure must not also
// drain the tenant's rate budget: a retry loop bouncing off a full
// queue would otherwise turn every other client's next submission into
// a rate-limit 429.
func (c *Controller) RefundSubmission(t *Tenant) {
	t.bucket.refund(c.now())
}

// RetryAfter suggests how long the tenant should wait before its next
// submission: the token-bucket refill time when it is rate-limited,
// otherwise fallback (capacity rejections have no bucket schedule, but
// an empty Retry-After would invite an immediate hammer).
func (c *Controller) RetryAfter(t *Tenant, fallback time.Duration) time.Duration {
	if d := t.bucket.retryAfter(c.now()); d > 0 {
		return d
	}
	return fallback
}

// JobStarted moves the tenant's in-flight gauge up as a job leaves the
// queue for a worker.
func (c *Controller) JobStarted(t *Tenant) {
	c.reg.Gauge(MetricInflight + `{tenant="` + t.id + `"}`).Inc()
}

// JobFinished is JobStarted's other half.
func (c *Controller) JobFinished(t *Tenant) {
	c.reg.Gauge(MetricInflight + `{tenant="` + t.id + `"}`).Dec()
}

// AcquireSweepCell claims one of the tenant's concurrent-sweep-cell
// slots. ok=false means the quota is exhausted — the sweep loop backs
// off and retries (quota pressure is back-pressure, not failure).
func (c *Controller) AcquireSweepCell(t *Tenant) bool {
	t.mu.Lock()
	max := t.limits.MaxSweepCells
	if max > 0 && t.sweepCells >= max {
		t.mu.Unlock()
		c.Reject(t, ReasonSweepCells)
		return false
	}
	t.sweepCells++
	t.mu.Unlock()
	c.reg.Gauge(MetricSweepCells + `{tenant="` + t.id + `"}`).Inc()
	return true
}

// ReleaseSweepCell returns a slot claimed by AcquireSweepCell.
func (c *Controller) ReleaseSweepCell(t *Tenant) {
	t.mu.Lock()
	if t.sweepCells > 0 {
		t.sweepCells--
	}
	t.mu.Unlock()
	c.reg.Gauge(MetricSweepCells + `{tenant="` + t.id + `"}`).Dec()
}
