package tenant

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fakeClock is a hand-advanced clock for bucket tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBucketRateAndRetryAfter: a 2/sec bucket with burst 2 admits the
// burst, rejects the third take with the honest refill time, and
// refills as the clock advances.
func TestBucketRateAndRetryAfter(t *testing.T) {
	clk := newFakeClock()
	var b bucket
	b.configure(2, 2, clk.now())

	for i := 0; i < 2; i++ {
		if ok, _ := b.take(clk.now()); !ok {
			t.Fatalf("take %d within burst rejected", i+1)
		}
	}
	ok, after := b.take(clk.now())
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	// Empty bucket at 2 tokens/sec: the next token is 500ms away.
	if after != 500*time.Millisecond {
		t.Fatalf("retry-after = %s, want 500ms", after)
	}
	clk.advance(500 * time.Millisecond)
	if ok, _ := b.take(clk.now()); !ok {
		t.Fatal("take after refill rejected")
	}
	// Unlimited bucket never rejects.
	var u bucket
	u.configure(0, 0, clk.now())
	for i := 0; i < 100; i++ {
		if ok, _ := u.take(clk.now()); !ok {
			t.Fatal("unlimited bucket rejected a take")
		}
	}
}

// TestBucketConfigurePreservesBalance: a hot reload must not hand the
// tenant a fresh burst (that would let it launder its rate limit by
// re-uploading the keyfile).
func TestBucketConfigurePreservesBalance(t *testing.T) {
	clk := newFakeClock()
	var b bucket
	b.configure(1, 5, clk.now())
	for i := 0; i < 5; i++ {
		b.take(clk.now())
	}
	b.configure(1, 5, clk.now()) // reload with identical limits
	if ok, _ := b.take(clk.now()); ok {
		t.Fatal("reload refilled an empty bucket")
	}
	// Shrinking the burst clamps a fuller balance down.
	var c bucket
	c.configure(1, 10, clk.now())
	c.configure(1, 2, clk.now())
	c.take(clk.now())
	c.take(clk.now())
	if ok, _ := c.take(clk.now()); ok {
		t.Fatal("burst shrink did not clamp the stored balance")
	}
}

func TestParseRejectsBadKeyfiles(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"tenant": []}`,
		"bad id chars":  `{"tenants": [{"id": "a b", "key": "k"}]}`,
		"empty id":      `{"tenants": [{"id": "", "key": "k"}]}`,
		"reserved id":   `{"tenants": [{"id": "anonymous", "key": "k"}]}`,
		"duplicate id":  `{"tenants": [{"id": "a", "key": "k1"}, {"id": "a", "key": "k2"}]}`,
		"duplicate key": `{"tenants": [{"id": "a", "key": "k"}, {"id": "b", "key": "k"}]}`,
		"empty key":     `{"tenants": [{"id": "a", "key": ""}]}`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, doc)
		}
	}
	kf, err := Parse([]byte(`{"anonymous": {"rate": 2}, "tenants": [{"id": "lab", "key": "k", "weight": 4, "rate": 2.5}]}`))
	if err != nil {
		t.Fatalf("valid keyfile rejected: %v", err)
	}
	if got := kf.Tenants[0].Burst; got != 3 {
		t.Fatalf("burst default = %d, want ceil(2.5) = 3", got)
	}
	if got := kf.Tenants[0].Weight; got != 4 {
		t.Fatalf("weight = %d, want 4", got)
	}
}

func writeKeyfile(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAuthenticateAndFromRequest(t *testing.T) {
	path := writeKeyfile(t, `{"tenants": [{"id": "lab-a", "key": "key-a"}, {"id": "lab-b", "key": "key-b"}]}`)
	c, err := NewController(Config{Path: path, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	if tn, err := c.Authenticate("key-b"); err != nil || tn.ID() != "lab-b" {
		t.Fatalf("Authenticate(key-b) = %v, %v; want lab-b", tn, err)
	}
	if _, err := c.Authenticate("nope"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown key error = %v, want ErrUnauthorized", err)
	}
	// No anonymous section in the keyfile: unauthenticated requests are
	// denied.
	if _, err := c.Authenticate(""); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("empty key error = %v, want ErrUnauthorized (keyfile has no anonymous section)", err)
	}

	r := httptest.NewRequest("POST", "/v1/jobs", nil)
	r.Header.Set("Authorization", "Bearer key-a")
	if tn, err := c.FromRequest(r); err != nil || tn.ID() != "lab-a" {
		t.Fatalf("FromRequest(bearer key-a) = %v, %v; want lab-a", tn, err)
	}
	r.Header.Set("Authorization", "Basic key-a")
	if _, err := c.FromRequest(r); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("non-bearer scheme error = %v, want ErrUnauthorized", err)
	}

	// An open controller (no keyfile) maps everything to anonymous.
	open := Open(nil)
	r2 := httptest.NewRequest("POST", "/v1/jobs", nil)
	if tn, err := open.FromRequest(r2); err != nil || tn.ID() != AnonymousID {
		t.Fatalf("open FromRequest = %v, %v; want anonymous", tn, err)
	}
}

// TestReloadPreservesLiveState: editing the keyfile must not reset a
// tenant's rate-limit balance, and removed tenants must stop
// authenticating immediately while a broken file changes nothing.
func TestReloadPreservesLiveState(t *testing.T) {
	clk := newFakeClock()
	path := writeKeyfile(t, `{"tenants": [{"id": "lab", "key": "k1", "rate": 1, "burst": 3}, {"id": "gone", "key": "k2"}]}`)
	c, err := NewController(Config{Path: path, Metrics: metrics.New(), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	lab, _ := c.Authenticate("k1")
	for i := 0; i < 3; i++ {
		if err := c.AdmitSubmission(lab); err != nil {
			t.Fatalf("burst take %d rejected: %v", i+1, err)
		}
	}
	if err := c.AdmitSubmission(lab); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-burst admit = %v, want ErrRateLimited", err)
	}

	// Reload: lab's key rotates and its weight changes, "gone" is gone.
	if err := os.WriteFile(path, []byte(`{"tenants": [{"id": "lab", "key": "k1-new", "rate": 1, "burst": 3, "weight": 7}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err != nil {
		t.Fatal(err)
	}
	lab2, err := c.Authenticate("k1-new")
	if err != nil {
		t.Fatal("rotated key does not authenticate")
	}
	if lab2 != lab {
		t.Fatal("reload created a new Tenant object for a surviving ID (live state lost)")
	}
	if lab2.Weight() != 7 {
		t.Fatalf("weight after reload = %d, want 7", lab2.Weight())
	}
	if err := c.AdmitSubmission(lab2); !errors.Is(err, ErrRateLimited) {
		t.Fatal("reload refilled the tenant's empty bucket")
	}
	if _, err := c.Authenticate("k2"); !errors.Is(err, ErrUnauthorized) {
		t.Fatal("removed tenant still authenticates")
	}

	// A broken file must leave the current set untouched.
	if err := os.WriteFile(path, []byte(`{broken`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err == nil {
		t.Fatal("Reload accepted a broken keyfile")
	}
	if _, err := c.Authenticate("k1-new"); err != nil {
		t.Fatal("failed reload locked out a previously valid key")
	}
}

// TestRefundSubmissionReturnsToken: a rate token taken for a
// submission the queue then rejected goes back into the bucket, so
// capacity back-pressure does not double as rate-limit pressure.
func TestRefundSubmissionReturnsToken(t *testing.T) {
	clk := newFakeClock()
	path := writeKeyfile(t, `{"tenants": [{"id": "lab", "key": "k", "rate": 1, "burst": 2}]}`)
	c, err := NewController(Config{Path: path, Metrics: metrics.New(), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	lab, _ := c.Authenticate("k")
	// Simulate bouncing off a full queue: take + refund must be a no-op
	// on the budget, any number of times.
	for i := 0; i < 10; i++ {
		if err := c.AdmitSubmission(lab); err != nil {
			t.Fatalf("take %d after refunds rejected: %v", i, err)
		}
		c.RefundSubmission(lab)
	}
	// The full burst is still available...
	for i := 0; i < 2; i++ {
		if err := c.AdmitSubmission(lab); err != nil {
			t.Fatalf("burst take %d rejected after refund cycle: %v", i+1, err)
		}
	}
	if err := c.AdmitSubmission(lab); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-burst admit = %v, want ErrRateLimited", err)
	}
	// ...and refunds clamp at the burst — they can never mint a balance
	// larger than the bucket holds.
	for i := 0; i < 5; i++ {
		c.RefundSubmission(lab)
	}
	for i := 0; i < 2; i++ {
		if err := c.AdmitSubmission(lab); err != nil {
			t.Fatalf("refunded take %d rejected: %v", i+1, err)
		}
	}
	if err := c.AdmitSubmission(lab); !errors.Is(err, ErrRateLimited) {
		t.Fatal("refunds minted tokens beyond the burst")
	}
}

// TestReloadDropsAnonymousSection: removing the anonymous section
// denies unauthenticated HTTP and reverts the anonymous tenant —
// still used by internal submitters — to the default unlimited limits
// instead of freezing the removed section's rate and quotas.
func TestReloadDropsAnonymousSection(t *testing.T) {
	clk := newFakeClock()
	path := writeKeyfile(t, `{"anonymous": {"rate": 1, "burst": 1, "max_queued": 2, "weight": 5}, "tenants": [{"id": "lab", "key": "k"}]}`)
	c, err := NewController(Config{Path: path, Metrics: metrics.New(), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	anon := c.Anonymous()
	if err := c.AdmitSubmission(anon); err != nil {
		t.Fatal(err)
	}
	if err := c.AdmitSubmission(anon); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("anonymous burst-1 second admit = %v, want ErrRateLimited", err)
	}

	if err := os.WriteFile(path, []byte(`{"tenants": [{"id": "lab", "key": "k"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Authenticate(""); !errors.Is(err, ErrUnauthorized) {
		t.Fatal("unauthenticated request admitted after the anonymous section was removed")
	}
	if lim := anon.Limits(); lim.Rate != 0 || lim.MaxQueued != 0 || lim.Weight != 1 {
		t.Fatalf("anonymous limits after section removal = %+v, want default unlimited", lim)
	}
	// Internal submitters (recovered sweeps, library Submit) are back to
	// unlimited, not stuck on the removed section's empty bucket.
	for i := 0; i < 10; i++ {
		if err := c.AdmitSubmission(anon); err != nil {
			t.Fatalf("internal anonymous admit %d after reload = %v, want unlimited", i, err)
		}
	}
}

// TestAdminFlag: the keyfile's admin bit reaches CanAccess, reloads
// can revoke it, and plain tenants only access their own resources.
func TestAdminFlag(t *testing.T) {
	path := writeKeyfile(t, `{"tenants": [{"id": "ops", "key": "ko", "admin": true}, {"id": "lab", "key": "kl"}]}`)
	c, err := NewController(Config{Path: path, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := c.Authenticate("ko")
	lab, _ := c.Authenticate("kl")
	if !ops.Admin() || !ops.CanAccess("lab") || !ops.CanAccess(AnonymousID) {
		t.Fatal("admin tenant cannot access other tenants' resources")
	}
	if lab.Admin() || lab.CanAccess("ops") {
		t.Fatal("plain tenant can access another tenant's resources")
	}
	if !lab.CanAccess("lab") {
		t.Fatal("tenant cannot access its own resources")
	}
	// A reload can revoke admin.
	if err := os.WriteFile(path, []byte(`{"tenants": [{"id": "ops", "key": "ko"}, {"id": "lab", "key": "kl"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err != nil {
		t.Fatal(err)
	}
	if ops.Admin() || ops.CanAccess("lab") {
		t.Fatal("reload did not revoke the admin bit")
	}
}

func TestSweepCellQuota(t *testing.T) {
	path := writeKeyfile(t, `{"tenants": [{"id": "lab", "key": "k", "max_sweep_cells": 2}]}`)
	c, err := NewController(Config{Path: path, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	lab, _ := c.Authenticate("k")
	if !c.AcquireSweepCell(lab) || !c.AcquireSweepCell(lab) {
		t.Fatal("acquire within quota rejected")
	}
	if c.AcquireSweepCell(lab) {
		t.Fatal("acquire beyond quota admitted")
	}
	c.ReleaseSweepCell(lab)
	if !c.AcquireSweepCell(lab) {
		t.Fatal("acquire after release rejected")
	}
	// Unlimited (anonymous) never rejects.
	for i := 0; i < 50; i++ {
		if !c.AcquireSweepCell(c.Anonymous()) {
			t.Fatal("unlimited tenant hit a sweep-cell quota")
		}
	}
}

func TestAdmissionErrorRetryAfterHeader(t *testing.T) {
	cases := []struct {
		after time.Duration
		want  string
	}{
		{0, "1"},
		{200 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	}
	for _, tc := range cases {
		e := &AdmissionError{Sentinel: ErrRateLimited, Tenant: "t", Reason: ReasonRateLimited, After: tc.after}
		if got := e.RetryAfterHeader(); got != tc.want {
			t.Errorf("RetryAfterHeader(%s) = %s, want %s", tc.after, got, tc.want)
		}
	}
	if !errors.Is(&AdmissionError{Sentinel: ErrQueueFull}, ErrQueueFull) {
		t.Fatal("AdmissionError does not unwrap to its sentinel")
	}
}

// twoTenantController builds an open controller plus two keyed tenants
// for queue tests.
func twoTenantController(t *testing.T, doc string) (*Controller, *Tenant, *Tenant) {
	t.Helper()
	c, err := NewController(Config{Path: writeKeyfile(t, doc), Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	var tens []*Tenant
	for _, id := range []string{"heavy", "light"} {
		c.mu.Lock()
		tn := c.tenants[id]
		c.mu.Unlock()
		if tn == nil {
			t.Fatalf("tenant %s missing", id)
		}
		tens = append(tens, tn)
	}
	return c, tens[0], tens[1]
}

// TestQueueDRRInterleavesByWeight: with both tenants backlogged, a
// weight-3 tenant drains three items for every one of a weight-1
// tenant, and the light tenant is never stuck behind the heavy one's
// whole backlog.
func TestQueueDRRInterleavesByWeight(t *testing.T) {
	c, heavy, light := twoTenantController(t,
		`{"tenants": [{"id": "heavy", "key": "kh", "weight": 3}, {"id": "light", "key": "kl", "weight": 1}]}`)
	q := NewQueue[string](c, QueueConfig{Capacity: 32})

	for i := 0; i < 6; i++ {
		if err := q.Push(heavy, "h"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := q.Push(light, "l"); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for q.Len() > 0 {
		item, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed unexpectedly")
		}
		order = append(order, item)
	}
	got := strings.Join(order, "")
	// heavy joined first, so its round runs first: 3 heavy, then light's
	// credit of 1, and so on. The light tenant's first item comes out
	// after at most one heavy round, not after all six.
	want := "hhhlhhhl"
	if got != want {
		t.Fatalf("drain order = %s, want %s", got, want)
	}
}

// TestQueueNewcomerWaitsOneRound: a tenant arriving mid-drain is served
// after the tenants already in the ring finish their current round —
// it neither jumps the line nor waits behind multiple rounds.
func TestQueueNewcomerWaitsOneRound(t *testing.T) {
	c, heavy, light := twoTenantController(t,
		`{"tenants": [{"id": "heavy", "key": "kh", "weight": 1}, {"id": "light", "key": "kl", "weight": 1}]}`)
	q := NewQueue[string](c, QueueConfig{Capacity: 32})
	for i := 0; i < 4; i++ {
		if err := q.Push(heavy, "h"); err != nil {
			t.Fatal(err)
		}
	}
	// Start draining heavy, then light shows up.
	if item, _ := q.Pop(); item != "h" {
		t.Fatalf("first pop = %s, want h", item)
	}
	if err := q.Push(light, "l"); err != nil {
		t.Fatal(err)
	}
	var order []string
	for q.Len() > 0 {
		item, _ := q.Pop()
		order = append(order, item)
	}
	if got := strings.Join(order, ""); got != "hlhh" {
		t.Fatalf("drain order after join = %s, want hlhh (light served at the next round boundary)", got)
	}
}

// TestQueueShedsOverShareTenantsFirst: past the shed threshold, a
// low-weight tenant is capped at its fair share while the high-weight
// tenant still fills its slice; at full capacity everyone gets
// queue_full.
func TestQueueShedsOverShareTenantsFirst(t *testing.T) {
	c, heavy, light := twoTenantController(t,
		`{"tenants": [{"id": "heavy", "key": "kh", "weight": 3}, {"id": "light", "key": "kl", "weight": 1}]}`)
	q := NewQueue[int](c, QueueConfig{Capacity: 20, ShedFrac: 0.5})

	// Fill to the shed threshold (10 items) split 8 heavy / 2 light.
	for i := 0; i < 8; i++ {
		if err := q.Push(heavy, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := q.Push(light, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Status().Tier; got != TierShedding {
		t.Fatalf("tier at threshold = %s, want shedding", got)
	}
	// light's fair share is 20*1/4 = 5: pushes up to 5 queued are still
	// admitted, the 6th sheds.
	for i := 2; i < 5; i++ {
		if err := q.Push(light, i); err != nil {
			t.Fatalf("light push %d within fair share rejected: %v", i, err)
		}
	}
	err := q.Push(light, 5)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("light push beyond fair share = %v, want ErrShed", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != ReasonShed {
		t.Fatalf("shed error reason = %v, want %s", err, ReasonShed)
	}
	// heavy's share is 20*3/4 = 15: while light is frozen out, heavy
	// keeps pushing right up to its slice — that is "low-weight tenants
	// shed first".
	for i := 8; i < 15; i++ {
		if err := q.Push(heavy, i); err != nil {
			t.Fatalf("heavy push %d within fair share rejected: %v", i, err)
		}
	}
	// The fair shares sum to capacity, so the queue is now full and
	// everyone — heavy included — gets queue_full.
	if err := q.Push(heavy, 15); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("heavy push at capacity = %v, want ErrQueueFull", err)
	}
	if err := q.Push(light, 6); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("light push at capacity = %v, want ErrQueueFull", err)
	}
}

func TestQueueMaxQueuedAndCapacity(t *testing.T) {
	path := writeKeyfile(t, `{"tenants": [{"id": "capped", "key": "k", "max_queued": 2}]}`)
	c, err := NewController(Config{Path: path, Metrics: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	capped, _ := c.Authenticate("k")
	q := NewQueue[int](c, QueueConfig{Capacity: 3})
	if err := q.Push(capped, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(capped, 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(capped, 3); !errors.Is(err, ErrQuota) {
		t.Fatalf("push beyond max_queued = %v, want ErrQuota", err)
	}
	if err := q.Push(c.Anonymous(), 4); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(c.Anonymous(), 5); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push beyond capacity = %v, want ErrQueueFull", err)
	}
}

// TestQueueCloseDrains: Close stops admission but lets Pop drain what
// was already admitted.
func TestQueueCloseDrains(t *testing.T) {
	c := Open(nil)
	q := NewQueue[int](c, QueueConfig{Capacity: 8})
	for i := 0; i < 3; i++ {
		if err := q.Push(c.Anonymous(), i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	// A closed queue is shutdown, not back-pressure: the error must not
	// be a retryable 429-class sentinel.
	if err := q.Push(c.Anonymous(), 99); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	} else if errors.Is(err, ErrQueueFull) {
		t.Fatal("push after close reported the retryable ErrQueueFull")
	}
	for i := 0; i < 3; i++ {
		item, ok := q.Pop()
		if !ok || item != i {
			t.Fatalf("drain pop %d = %d, %v", i, item, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on a drained closed queue reported ok")
	}
}
