// Package topology models multi-hop sensor-network topologies: undirected
// graphs over sensor nodes, generators for the deployment shapes used in
// the paper's discussion and evaluation (random geometric deployments,
// grids, lines), and the depth computations that define the paper's
// parameter L.
//
// The paper (Section III) defines the depth of a sensor as the length of
// the shortest path from that sensor to the base station, and the depth of
// the network as the maximum sensor depth after excluding all malicious
// sensors. VMAT only assumes a rough upper bound L on that depth.
package topology

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/crypto"
)

// NodeID identifies a node. By convention node 0 is the base station.
type NodeID int

// BaseStation is the conventional identity of the base station node.
const BaseStation NodeID = 0

// Graph is an undirected graph over nodes 0..N-1. The zero value is not
// usable; construct with New.
type Graph struct {
	n   int
	adj [][]NodeID         // sorted neighbor lists
	set map[[2]NodeID]bool // edge membership, normalized lo<hi
}

// New returns an empty graph over n nodes.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("topology: graph must have at least one node, got %d", n))
	}
	return &Graph{
		n:   n,
		adj: make([][]NodeID, n),
		set: make(map[[2]NodeID]bool),
	}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge inserts the undirected edge (a, b). Self-loops and duplicate
// edges are ignored.
func (g *Graph) AddEdge(a, b NodeID) {
	if a == b || a < 0 || b < 0 || int(a) >= g.n || int(b) >= g.n {
		return
	}
	k := normEdge(a, b)
	if g.set[k] {
		return
	}
	g.set[k] = true
	g.adj[a] = insertSorted(g.adj[a], b)
	g.adj[b] = insertSorted(g.adj[b], a)
}

// HasEdge reports whether the undirected edge (a, b) exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if a < 0 || b < 0 || int(a) >= g.n || int(b) >= g.n {
		return false
	}
	return g.set[normEdge(a, b)]
}

// Neighbors returns the sorted neighbor list of id. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if id < 0 || int(id) >= g.n {
		return nil
	}
	return g.adj[id]
}

// Degree returns the number of neighbors of id.
func (g *Graph) Degree(id NodeID) int { return len(g.Neighbors(id)) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.set) }

// Edges returns all undirected edges with a < b, in sorted order.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, len(g.set))
	for e := range g.set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for e := range g.set {
		c.AddEdge(e[0], e[1])
	}
	return c
}

// Subgraph returns a copy of g keeping only edges for which keep returns
// true. Nodes are preserved.
func (g *Graph) Subgraph(keep func(a, b NodeID) bool) *Graph {
	c := New(g.n)
	for e := range g.set {
		if keep(e[0], e[1]) {
			c.AddEdge(e[0], e[1])
		}
	}
	return c
}

// Without returns a copy of g with all edges incident to excluded nodes
// removed. It is used to compute depths "excluding all malicious sensors"
// per the paper's definition of network depth.
func (g *Graph) Without(excluded map[NodeID]bool) *Graph {
	return g.Subgraph(func(a, b NodeID) bool {
		return !excluded[a] && !excluded[b]
	})
}

// Depths returns the BFS depth of every node from root, or -1 for nodes
// unreachable from root.
func (g *Graph) Depths(root NodeID) []int {
	depth := make([]int, g.n)
	for i := range depth {
		depth[i] = -1
	}
	if root < 0 || int(root) >= g.n {
		return depth
	}
	depth[root] = 0
	queue := []NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if depth[nb] == -1 {
				depth[nb] = depth[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return depth
}

// Depth returns the network depth from root: the maximum finite BFS depth.
// Unreachable nodes are ignored.
func (g *Graph) Depth(root NodeID) int {
	max := 0
	for _, d := range g.Depths(root) {
		if d > max {
			max = d
		}
	}
	return max
}

// HonestDepth returns the paper's L for this deployment: the depth of the
// network from the base station after excluding the given malicious nodes.
func (g *Graph) HonestDepth(root NodeID, malicious map[NodeID]bool) int {
	return g.Without(malicious).Depth(root)
}

// Connected reports whether every node is reachable from root.
func (g *Graph) Connected(root NodeID) bool {
	for id, d := range g.Depths(root) {
		if d == -1 && NodeID(id) != root {
			return false
		}
	}
	return true
}

// ConnectedExcluding reports whether every non-excluded node is reachable
// from root without traversing excluded nodes. The paper assumes malicious
// sensors do not partition the honest sensors from the base station.
func (g *Graph) ConnectedExcluding(root NodeID, excluded map[NodeID]bool) bool {
	depths := g.Without(excluded).Depths(root)
	for id, d := range depths {
		if excluded[NodeID(id)] || NodeID(id) == root {
			continue
		}
		if d == -1 {
			return false
		}
	}
	return true
}

func normEdge(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Line returns a path graph 0-1-2-...-(n-1). Its depth from node 0 is n-1,
// the worst case for the paper's L.
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

// Ring returns a cycle over n nodes.
func Ring(n int) *Graph {
	g := Line(n)
	if n > 2 {
		g.AddEdge(0, NodeID(n-1))
	}
	return g
}

// Star returns a star with node 0 at the center, the single-level
// aggregation setting of early secure-aggregation work.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i))
	}
	return g
}

// Grid returns a rows x cols grid graph. Node 0 (the base station) sits at
// the corner (0, 0); node r*cols+c sits at (r, c).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// RandomGeometric places n nodes uniformly in the unit square, connects
// pairs within the given radio radius, and returns the graph together with
// the node coordinates. Node 0 is pinned to the corner (0, 0) to play the
// base station. If the resulting graph is disconnected, each stranded
// component is attached to its nearest connected node so the returned
// graph is always connected (the paper's system model assumes honest
// sensors are not partitioned).
func RandomGeometric(n int, radius float64, rng *crypto.Stream) (*Graph, [][2]float64) {
	pts := make([][2]float64, n)
	pts[0] = [2]float64{0, 0}
	for i := 1; i < n; i++ {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist(pts[i], pts[j]) <= radius {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	stitchComponents(g, pts)
	return g, pts
}

// stitchComponents connects any component unreachable from node 0 to the
// reachable set via the geometrically closest node pair.
func stitchComponents(g *Graph, pts [][2]float64) {
	for {
		depths := g.Depths(0)
		bestI, bestJ := -1, -1
		best := math.Inf(1)
		anyStranded := false
		for i := 0; i < g.n; i++ {
			if depths[i] != -1 {
				continue
			}
			anyStranded = true
			for j := 0; j < g.n; j++ {
				if depths[j] == -1 {
					continue
				}
				if d := dist(pts[i], pts[j]); d < best {
					best, bestI, bestJ = d, i, j
				}
			}
		}
		if !anyStranded {
			return
		}
		g.AddEdge(NodeID(bestI), NodeID(bestJ))
	}
}

func dist(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return math.Sqrt(dx*dx + dy*dy)
}
