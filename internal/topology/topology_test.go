package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/crypto"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, reversed
	g.AddEdge(2, 2) // self-loop ignored
	g.AddEdge(0, 9) // out of range ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("expected 1 edge, got %d", g.NumEdges())
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 9) {
		t.Fatal("invalid edges were stored")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	nb := g.Neighbors(2)
	want := []NodeID{0, 1, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("neighbors = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nb, want)
		}
	}
	if g.Degree(2) != 4 || g.Degree(0) != 1 {
		t.Fatal("degree mismatch")
	}
}

func TestLineDepths(t *testing.T) {
	g := Line(5)
	d := g.Depths(0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Fatalf("depth of node %d = %d, want %d", i, d[i], i)
		}
	}
	if g.Depth(0) != 4 {
		t.Fatalf("line depth = %d, want 4", g.Depth(0))
	}
	if !g.Connected(0) {
		t.Fatal("line should be connected")
	}
}

func TestRingStarGrid(t *testing.T) {
	if got := Ring(6).Depth(0); got != 3 {
		t.Fatalf("ring(6) depth = %d, want 3", got)
	}
	if got := Star(10).Depth(0); got != 1 {
		t.Fatalf("star depth = %d, want 1", got)
	}
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	if got := g.Depth(0); got != 2+3 {
		t.Fatalf("grid(3,4) depth = %d, want 5", got)
	}
	if !g.Connected(0) {
		t.Fatal("grid should be connected")
	}
}

func TestDepthsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	d := g.Depths(0)
	if d[2] != -1 {
		t.Fatalf("unreachable node depth = %d, want -1", d[2])
	}
	if g.Connected(0) {
		t.Fatal("graph with stranded node reported connected")
	}
}

func TestWithoutExcludesMalicious(t *testing.T) {
	// 0-1-2 and 0-3-2: excluding node 1 must leave 2 reachable via 3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	mal := map[NodeID]bool{1: true}
	h := g.Without(mal)
	if h.HasEdge(0, 1) || h.HasEdge(1, 2) {
		t.Fatal("edges incident to excluded node survived")
	}
	if d := h.Depths(0)[2]; d != 2 {
		t.Fatalf("honest depth of node 2 = %d, want 2", d)
	}
	if got := g.HonestDepth(0, mal); got != 2 {
		t.Fatalf("honest depth = %d, want 2", got)
	}
	if !g.ConnectedExcluding(0, mal) {
		t.Fatal("honest component should be connected")
	}
}

func TestConnectedExcludingDetectsPartition(t *testing.T) {
	// 0-1-2: node 1 malicious partitions node 2 away.
	g := Line(3)
	if g.ConnectedExcluding(0, map[NodeID]bool{1: true}) {
		t.Fatal("partition not detected")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Line(3)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone mutation leaked into original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost edges")
	}
}

func TestSubgraphFilter(t *testing.T) {
	g := Grid(2, 2)
	sub := g.Subgraph(func(a, b NodeID) bool { return a != 0 && b != 0 })
	if sub.Degree(0) != 0 {
		t.Fatal("subgraph kept filtered edges")
	}
	if sub.NumNodes() != g.NumNodes() {
		t.Fatal("subgraph changed node count")
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := Grid(2, 3)
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges() returned %d, NumEdges() = %d", len(edges), g.NumEdges())
	}
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("edges not sorted: %v before %v", a, b)
		}
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge not normalized: %v", e)
		}
	}
}

func TestRandomGeometricConnectedAndDeterministic(t *testing.T) {
	g1, pts1 := RandomGeometric(200, 0.12, crypto.NewStreamFromSeed(11))
	g2, pts2 := RandomGeometric(200, 0.12, crypto.NewStreamFromSeed(11))
	if !g1.Connected(0) {
		t.Fatal("random geometric graph not stitched connected")
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("nondeterministic generation: %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	for i := range pts1 {
		if pts1[i] != pts2[i] {
			t.Fatal("nondeterministic coordinates")
		}
	}
	if pts1[0] != [2]float64{0, 0} {
		t.Fatal("base station not pinned at origin")
	}
}

func TestRandomGeometricSparseStillConnected(t *testing.T) {
	// Tiny radius forces stitching of many components.
	g, _ := RandomGeometric(100, 0.01, crypto.NewStreamFromSeed(5))
	if !g.Connected(0) {
		t.Fatal("stitching failed for sparse deployment")
	}
}

func TestDepthPropertyTriangleInequality(t *testing.T) {
	// Property: adding an edge never increases any BFS depth.
	f := func(seed uint64) bool {
		rng := crypto.NewStreamFromSeed(seed)
		g, _ := RandomGeometric(60, 0.15, rng)
		before := g.Depths(0)
		a := NodeID(rng.Intn(60))
		b := NodeID(rng.Intn(60))
		g.AddEdge(a, b)
		after := g.Depths(0)
		for i := range before {
			if before[i] != -1 && after[i] > before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthPropertyNeighborsDifferByOne(t *testing.T) {
	// Property: BFS depths of adjacent nodes differ by at most 1.
	f := func(seed uint64) bool {
		g, _ := RandomGeometric(80, 0.2, crypto.NewStreamFromSeed(seed))
		d := g.Depths(0)
		for _, e := range g.Edges() {
			da, db := d[e[0]], d[e[1]]
			if da == -1 || db == -1 {
				continue
			}
			if da-db > 1 || db-da > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
