// Package wire is the persistent-connection transport of the sharded
// execution fabric: compact length-prefixed binary frames over one
// long-lived TCP conn per worker, replacing the per-unit HTTP polling
// of the original cluster plane. The framing mirrors the result store's
// journal records (internal/store): a fixed magic, a bounded length,
// and a CRC32 of the payload, so a torn, truncated, or hostile byte
// stream is detected and the conn is closed — never a panic, and never
// an unbounded allocation. HTTP registration stays as the bootstrap and
// fallback path; this package carries only the hot loop (batched lease
// grants, streamed shard completions, piggybacked heartbeats).
//
// Frame layout (13-byte header, little-endian):
//
//	magic  [4]byte "VMW1"
//	type   uint8
//	length uint32  payload bytes, ≤ MaxPayload
//	crc32  uint32  IEEE CRC of the payload
//	payload
//
// The frame types and their payload encodings belong to the protocol
// layer (internal/cluster): this package moves opaque typed payloads.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// Metric names the transport reports (registered by whichever side
// hosts a metrics registry — in this repository, the coordinator).
const (
	MetricFramesSent     = "wire_frames_sent_total"
	MetricFramesReceived = "wire_frames_received_total"
	MetricFrameErrors    = "wire_frame_errors_total"
	MetricReconnects     = "wire_reconnects_total"
	MetricConnsActive    = "wire_conns_active"
)

// FrameType tags a frame's payload encoding. Types are defined by the
// protocol layer; the transport only checks that the type is non-zero
// (zero bytes where a header should be is the classic torn-stream
// signature). Receivers ignore types they do not know, which is what
// lets the protocol grow without a version dance.
type FrameType uint8

// Frame types of the cluster protocol (defined here so both ends and
// the fuzz corpus share one set).
const (
	// Hello opens a conn: the worker presents its registered ID.
	Hello FrameType = 1
	// HelloAck accepts or rejects the Hello and carries the cadence.
	HelloAck FrameType = 2
	// Want advertises how many more units the worker can take.
	Want FrameType = 3
	// Grant carries a batch of leased shard descriptors.
	Grant FrameType = 4
	// Complete streams one finished unit's result upload.
	Complete FrameType = 5
	// Heartbeat renews liveness and extends the held leases.
	Heartbeat FrameType = 6
	// Bye announces a graceful worker exit.
	Bye FrameType = 7
)

var magic = [4]byte{'V', 'M', 'W', '1'}

const headerLen = 13

// MaxPayload bounds one frame's payload: the same cap as the HTTP
// complete endpoint, since completion uploads are the largest frames.
const MaxPayload = 64 << 20

// ErrBadFrame wraps every framing violation (bad magic, zero type,
// oversized length, CRC mismatch). The conn is unusable after one:
// close it and re-sync by reconnecting.
var ErrBadFrame = errors.New("wire: bad frame")

// AppendFrame appends one encoded frame to dst.
func AppendFrame(dst []byte, t FrameType, payload []byte) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, byte(t))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// ReadFrame reads and verifies one frame from r. Errors are terminal
// for the stream: framing violations return ErrBadFrame (wrapped), and
// short reads surface as io errors. The payload allocation is bounded
// by MaxPayload before it happens.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if [4]byte(hdr[:4]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic %x", ErrBadFrame, hdr[:4])
	}
	t := FrameType(hdr[4])
	if t == 0 {
		return 0, nil, fmt.Errorf("%w: zero frame type", ErrBadFrame)
	}
	length := binary.LittleEndian.Uint32(hdr[5:9])
	if length > MaxPayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, length, MaxPayload)
	}
	sum := binary.LittleEndian.Uint32(hdr[9:13])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, fmt.Errorf("%w: payload CRC mismatch", ErrBadFrame)
	}
	return t, payload, nil
}

// Conn wraps a net.Conn with framed reads and mutex-serialized writes:
// any goroutine may Send (completions, heartbeats, and demand all race
// for the same conn) while exactly one goroutine Recvs. Close is safe
// to call from any goroutine and unblocks a pending Recv.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	buf []byte // Send's scratch frame, reused under wmu
}

// NewConn wraps an established net.Conn.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReaderSize(nc, 64<<10)}
}

// Send writes one frame. A frame is written in a single Write call so
// concurrent senders can never interleave partial frames.
func (c *Conn) Send(t FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.buf = AppendFrame(c.buf[:0], t, payload)
	_, err := c.nc.Write(c.buf)
	return err
}

// Recv reads the next frame. Not safe for concurrent use; run one
// reader goroutine per conn.
func (c *Conn) Recv() (FrameType, []byte, error) {
	return ReadFrame(c.r)
}

// SetReadDeadline bounds the next Recv; the zero time clears it.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// RemoteAddr reports the peer, for logs.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Close closes the underlying conn, unblocking any pending Recv.
func (c *Conn) Close() error { return c.nc.Close() }
