package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// FuzzReadFrame is the journal-crash-test of the transport: arbitrary
// bytes fed to the frame reader must decode cleanly, hit io.EOF /
// io.ErrUnexpectedEOF, or fail with ErrBadFrame — never panic, and
// never allocate past MaxPayload. Whatever it accepts must re-encode to
// exactly the bytes consumed.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Hello, []byte(`{"worker_id":"w0001"}`)))
	f.Add(AppendFrame(AppendFrame(nil, Want, []byte(`{"n":2}`)), Heartbeat, []byte(`{}`)))
	f.Add([]byte("VMW1"))
	f.Add(bytes.Repeat([]byte{0}, headerLen))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		consumed := 0
		for {
			before := r.Len()
			ft, payload, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			n := before - r.Len()
			re := AppendFrame(nil, ft, payload)
			if !bytes.Equal(re, b[consumed:consumed+n]) {
				t.Fatal("accepted frame does not re-encode to the consumed bytes")
			}
			consumed += n
		}
	})
}

// FuzzConnStream drives the same bytes through a real Conn over a TCP
// socket — the deployed read path, bufio and deadlines included — and
// requires the reader goroutine to terminate without panicking no
// matter what arrives.
func FuzzConnStream(f *testing.F) {
	f.Add(AppendFrame(nil, Grant, bytes.Repeat([]byte{1}, 100)))
	f.Add([]byte("VMW1\x05garbage that is not a frame at all"))
	f.Fuzz(func(t *testing.T, b []byte) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skip("no loopback listener:", err)
		}
		defer ln.Close()
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Write(b)
			c.Close()
		}()
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Skip("no loopback dial:", err)
		}
		conn := NewConn(nc)
		defer conn.Close()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			if _, _, err := conn.Recv(); err != nil {
				return
			}
		}
	})
}
