package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xab}, 70000)}
	types := []FrameType{Hello, Heartbeat, Complete}
	for i, p := range payloads {
		stream = AppendFrame(stream, types[i], p)
	}
	r := bytes.NewReader(stream)
	for i, want := range payloads {
		ft, got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != types[i] || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: type %d len %d, want type %d len %d", i, ft, len(got), types[i], len(want))
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	good := AppendFrame(nil, Grant, []byte("payload bytes"))

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte{}, good...)
		mutate(b)
		_, _, err := ReadFrame(bytes.NewReader(b))
		return err
	}

	if err := corrupt(func(b []byte) { b[0] = 'X' }); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: %v", err)
	}
	if err := corrupt(func(b []byte) { b[4] = 0 }); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero type: %v", err)
	}
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint32(b[5:9], MaxPayload+1)
	}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized length: %v", err)
	}
	if err := corrupt(func(b []byte) { b[len(b)-1] ^= 0xff }); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("flipped payload bit: %v", err)
	}
	// Torn mid-payload and mid-header: io errors, not panics.
	for _, cut := range []int{3, headerLen, len(good) - 2} {
		if _, _, err := ReadFrame(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("torn at %d: decoded without error", cut)
		}
	}
}

func TestConnConcurrentSendersDoNotInterleave(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	const senders, frames = 8, 25
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('a' + s)}, 300+s)
			for i := 0; i < frames; i++ {
				if err := ca.Send(FrameType(s+1), payload); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	recvErr := make(chan error, 1)
	go func() {
		for i := 0; i < senders*frames; i++ {
			ft, p, err := cb.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			want := bytes.Repeat([]byte{byte('a'+ft) - 1}, 300+int(ft)-1)
			if !bytes.Equal(p, want) {
				recvErr <- errors.New("payload does not match its frame type: frames interleaved")
				return
			}
		}
		recvErr <- nil
	}()
	wg.Wait()
	if err := <-recvErr; err != nil {
		t.Fatal(err)
	}
}

func TestConnCloseUnblocksRecv(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer cb.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := ca.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ca.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestConnReadDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			time.Sleep(time.Second)
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(nc)
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, _, err := c.Recv(); err == nil {
		t.Fatal("Recv returned nil past its deadline")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
}
