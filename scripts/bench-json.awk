# Converts `go test -bench` output to machine-readable JSON: an "env"
# object capturing the machine the numbers were taken on (go version via
# -v goversion=..., goos/goarch/cpu from the bench header, GOMAXPROCS
# from the benchmark name suffix) and a "benchmarks" array with one
# object per benchmark holding iterations plus every reported metric
# (ns/op, B/op, allocs/op, custom ReportMetric units). Shared by the
# Makefile's bench and bench-cluster targets.
BEGIN { nb = 0 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { cpu = $0; sub(/^cpu: */, "", cpu) }
/^Benchmark/ {
  procs = $1; sub(/.*-/, "", procs);
  if (procs ~ /^[0-9]+$/) gomaxprocs = procs;
  name = $1; sub(/-[0-9]+$/, "", name);
  line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2);
  for (i = 3; i < NF; i += 2) {
    unit = $(i + 1); gsub(/\//, "_per_", unit);
    line = line sprintf(", \"%s\": %s", unit, $i);
  }
  bench[nb++] = line "}";
}
END {
  # go test omits the -N name suffix exactly when GOMAXPROCS is 1.
  if (gomaxprocs == "" && nb > 0) gomaxprocs = 1;
  print "{";
  printf "  \"env\": {\"go\": \"%s\", \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"gomaxprocs\": %s},\n",
    goversion, goos, goarch, cpu, (gomaxprocs == "" ? "null" : gomaxprocs);
  print "  \"benchmarks\": [";
  for (i = 0; i < nb; i++) print bench[i] (i < nb - 1 ? "," : "");
  print "  ]";
  print "}";
}
