# Converts `go test -bench` output to machine-readable JSON: one object
# per benchmark with iterations plus every reported metric (ns/op, B/op,
# allocs/op, custom ReportMetric units). Shared by the Makefile's bench
# and bench-cluster targets.
BEGIN { print "[" }
/^Benchmark/ {
  if (seen++) printf ",\n";
  name = $1; sub(/-[0-9]+$/, "", name);
  printf "  {\"name\": \"%s\", \"iterations\": %s", name, $2;
  for (i = 3; i < NF; i += 2) {
    unit = $(i + 1); gsub(/\//, "_per_", unit);
    printf ", \"%s\": %s", unit, $i;
  }
  printf "}";
}
END { print "\n]" }
