#!/usr/bin/env bash
# Chaos smoke test: build the real binaries and run the deterministic
# crash harness (cmd/vmat-chaos) against them — a 4-worker fleet runs a
# sweep, the server is SIGKILLed mid-sweep and restarted on the same
# data dir, and the harness verifies the recovery contract: the sweep
# resumes unprompted under the same ID, the final CSV is bit-identical
# to an undisturbed zero-fleet baseline, and total engine executions
# stay bounded (completed cells came back from the store, not the
# engine). WORKERS, SEED, KILLS, and SHARD_TRIALS override the defaults.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKERS="${WORKERS:-4}"
SEED="${SEED:-11}"
KILLS="${KILLS:-1}"
SEVERS="${SEVERS:-0}"
SHARD_TRIALS="${SHARD_TRIALS:-0}"
WORK="$(mktemp -d)"

cleanup() {
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "chaos-cluster: FAIL: $*" >&2
  for log in "$WORK"/run/*.log "$WORK"/run/baseline/*.log; do
    [ -f "$log" ] || continue
    echo "--- $(basename "$(dirname "$log")")/$(basename "$log") ---" >&2
    cat "$log" >&2 || true
  done
  exit 1
}

echo "chaos-cluster: building binaries"
go build -o "$WORK/vmat-server" ./cmd/vmat-server
go build -o "$WORK/vmat-worker" ./cmd/vmat-worker
go build -o "$WORK/vmat-chaos" ./cmd/vmat-chaos

echo "chaos-cluster: running harness (workers=${WORKERS} seed=${SEED} kills=${KILLS} severs=${SEVERS} shard-trials=${SHARD_TRIALS})"
"$WORK/vmat-chaos" \
  -server-bin "$WORK/vmat-server" -worker-bin "$WORK/vmat-worker" \
  -workers "$WORKERS" -seed "$SEED" -kills "$KILLS" -severs "$SEVERS" \
  -shard-trials "$SHARD_TRIALS" -work-dir "$WORK" \
  || fail "harness reported a violation (rerun with -seed ${SEED} to reproduce)"

echo "chaos-cluster: PASS"
