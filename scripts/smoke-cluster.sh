#!/usr/bin/env bash
# Multi-process cluster smoke test: a real vmat-server -cluster process
# and WORKERS real vmat-worker processes (default 1), talking over
# loopback — HTTP for registration, the binary streaming transport for
# work. Verifies the fleet registers (healthz leaves "degraded"), one
# job dispatches through it (service_jobs_executed_total{path=
# "cluster"}), and every process drains cleanly on SIGTERM with exit
# code 0. SHARD_TRIALS > 0 makes the server split the job into
# trial-range shards and asserts the shard pipeline (planned/merged/
# assembled counters, wire frames) actually carried them.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18097}"
WIRE_PORT="$((PORT + 1))"
WORKERS="${WORKERS:-1}"
SHARD_TRIALS="${SHARD_TRIALS:-0}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SERVER_PID=""
WORKER_PIDS=()

cleanup() {
  for pid in "${WORKER_PIDS[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "smoke-cluster: FAIL: $*" >&2
  echo "--- server log ---" >&2; cat "$WORK/server.log" >&2 || true
  for log in "$WORK"/worker-*.log; do
    echo "--- $(basename "$log") ---" >&2; cat "$log" >&2 || true
  done
  exit 1
}

echo "smoke-cluster: building binaries"
go build -o "$WORK/vmat-server" ./cmd/vmat-server
go build -o "$WORK/vmat-worker" ./cmd/vmat-worker

echo "smoke-cluster: starting vmat-server -cluster on :${PORT} (shard-trials=${SHARD_TRIALS})"
"$WORK/vmat-server" -addr "127.0.0.1:${PORT}" -cluster -lease-ttl 5s \
  -wire-addr "127.0.0.1:${WIRE_PORT}" -shard-trials "$SHARD_TRIALS" \
  -data-dir "$WORK/store" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "server never became healthy"

# Cluster mode with an empty fleet must report degraded.
curl -fsS "$BASE/healthz" | grep -q '"degraded"' \
  || fail "healthz not degraded with zero workers"

echo "smoke-cluster: starting ${WORKERS} vmat-worker process(es)"
for i in $(seq 1 "$WORKERS"); do
  "$WORK/vmat-worker" -server "$BASE" -name "smoke-$i" \
    >"$WORK/worker-$i.log" 2>&1 &
  WORKER_PIDS+=("$!")
done

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' \
  || fail "healthz still degraded after the workers joined"

echo "smoke-cluster: submitting a job through the fleet"
JOB_ID=$(curl -fsS -X POST "$BASE/v1/jobs" -d \
  '{"n":30,"topology":"geometric","query":"min","attack":"drop","malicious":1,"trials":3,"seed":7}' \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$JOB_ID" ] || fail "job submission returned no id"

for _ in $(seq 1 300); do
  STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB_ID" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
  case "$STATUS" in
    done) break ;;
    failed|cancelled) fail "job ended $STATUS" ;;
  esac
  sleep 0.1
done
[ "$STATUS" = done ] || fail "job never finished (last status: ${STATUS:-none})"

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q 'service_jobs_executed_total{path="cluster"} 1' \
  || fail "job did not dispatch through the cluster"
TOTAL_UNITS=$(echo "$METRICS" | awk '/^cluster_units_completed_total{/ {sum += $2} END {print sum+0}')
[ "$TOTAL_UNITS" -ge 1 ] || fail "no unit completions counted across the fleet"
WIRE_FRAMES=$(echo "$METRICS" | awk '/^wire_frames_sent_total / {print $2+0}')
[ "${WIRE_FRAMES:-0}" -ge 1 ] || fail "no frames crossed the streaming transport"

if [ "$SHARD_TRIALS" -gt 0 ]; then
  PLANNED=$(echo "$METRICS" | awk '/^cluster_shards_planned_total / {print $2+0}')
  MERGED=$(echo "$METRICS" | awk '/^cluster_shards_merged_total / {print $2+0}')
  [ "${PLANNED:-0}" -ge 2 ] \
    || fail "3-trial job at shard-trials=${SHARD_TRIALS} planned ${PLANNED:-0} shards, want >= 2"
  [ "${MERGED:-0}" -eq "$PLANNED" ] \
    || fail "planned $PLANNED shards but merged ${MERGED:-0}"
  echo "$METRICS" | grep -q '^cluster_scenarios_assembled_total 1$' \
    || fail "merged shards never assembled into the scenario"
fi

echo "smoke-cluster: draining all processes"
for idx in "${!WORKER_PIDS[@]}"; do
  kill -TERM "${WORKER_PIDS[$idx]}"
  wait "${WORKER_PIDS[$idx]}" || fail "worker $((idx + 1)) exited non-zero on SIGTERM"
  grep -q "deregistered" "$WORK/worker-$((idx + 1)).log" \
    || fail "worker $((idx + 1)) did not deregister on drain"
done
WORKER_PIDS=()

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""
grep -q "drained, bye" "$WORK/server.log" || fail "server did not drain cleanly"

echo "smoke-cluster: PASS"
