#!/usr/bin/env bash
# Two-process cluster smoke test: a real vmat-server -cluster process
# and a real vmat-worker process, talking over loopback HTTP. Verifies
# the worker registers (healthz leaves "degraded"), one job dispatches
# through the fleet (service_jobs_executed_total{path="cluster"}), and
# both processes drain cleanly on SIGTERM with exit code 0.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18097}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SERVER_PID=""
WORKER_PID=""

cleanup() {
  [ -n "$WORKER_PID" ] && kill "$WORKER_PID" 2>/dev/null || true
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "smoke-cluster: FAIL: $*" >&2
  echo "--- server log ---" >&2; cat "$WORK/server.log" >&2 || true
  echo "--- worker log ---" >&2; cat "$WORK/worker.log" >&2 || true
  exit 1
}

echo "smoke-cluster: building binaries"
go build -o "$WORK/vmat-server" ./cmd/vmat-server
go build -o "$WORK/vmat-worker" ./cmd/vmat-worker

echo "smoke-cluster: starting vmat-server -cluster on :${PORT}"
"$WORK/vmat-server" -addr "127.0.0.1:${PORT}" -cluster -lease-ttl 5s \
  -data-dir "$WORK/store" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "server never became healthy"

# Cluster mode with an empty fleet must report degraded.
curl -fsS "$BASE/healthz" | grep -q '"degraded"' \
  || fail "healthz not degraded with zero workers"

echo "smoke-cluster: starting vmat-worker"
"$WORK/vmat-worker" -server "$BASE" -name smoke-1 >"$WORK/worker.log" 2>&1 &
WORKER_PID=$!

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' \
  || fail "healthz still degraded after the worker joined"

echo "smoke-cluster: submitting a job through the fleet"
JOB_ID=$(curl -fsS -X POST "$BASE/v1/jobs" -d \
  '{"n":30,"topology":"geometric","query":"min","attack":"drop","malicious":1,"trials":3,"seed":7}' \
  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$JOB_ID" ] || fail "job submission returned no id"

for _ in $(seq 1 300); do
  STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB_ID" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
  case "$STATUS" in
    done) break ;;
    failed|cancelled) fail "job ended $STATUS" ;;
  esac
  sleep 0.1
done
[ "$STATUS" = done ] || fail "job never finished (last status: ${STATUS:-none})"

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q 'service_jobs_executed_total{path="cluster"} 1' \
  || fail "job did not dispatch through the cluster"
echo "$METRICS" | grep -q 'cluster_units_completed_total{worker="smoke-1"} 1' \
  || fail "worker completion not counted"

echo "smoke-cluster: draining both processes"
kill -TERM "$WORKER_PID"
wait "$WORKER_PID" || fail "worker exited non-zero on SIGTERM"
WORKER_PID=""
grep -q "deregistered" "$WORK/worker.log" || fail "worker did not deregister on drain"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""
grep -q "drained, bye" "$WORK/server.log" || fail "server did not drain cleanly"

echo "smoke-cluster: PASS"
