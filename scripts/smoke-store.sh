#!/usr/bin/env bash
# Storage-engine smoke test: a real vmat-server with a deliberately tiny
# -store-segment-bytes runs a sweep big enough to roll the journal
# through several segments, is SIGKILLed with no warning, and must come
# back whole: `vmat-store verify` passes offline on the killed
# directory, a restarted server serves every cell from the store
# (cached == cells, executed == 0), and the re-exported CSV is
# bit-identical to the pre-kill baseline. SMOKE_PORT and SEGMENT_BYTES
# override the defaults.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18107}"
SEGMENT_BYTES="${SEGMENT_BYTES:-2048}"
BASE="http://127.0.0.1:${PORT}"
GRID='{"n": [30, 40, 50, 60], "attack": ["none", "drop", "junk"], "trials": 4, "seed": 23, "workers": 1}'
CELLS=12
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "smoke-store: FAIL: $*" >&2
  echo "--- server log ---" >&2; cat "$WORK/server.log" >&2 || true
  exit 1
}

start_server() {
  "$WORK/vmat-server" -addr "127.0.0.1:${PORT}" \
    -data-dir "$WORK/store" \
    -store-segment-bytes "$SEGMENT_BYTES" \
    -store-compact-interval 1s \
    >>"$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "server never became healthy"
}

run_sweep() {
  local id status
  id=$(curl -fsS -X POST "$BASE/v1/sweeps" -d "$GRID" \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
  [ -n "$id" ] || fail "sweep submission returned no id"
  for _ in $(seq 1 600); do
    status=$(curl -fsS "$BASE/v1/sweeps/$id" | sed -n 's/.*"status":"\([^"]*\)".*/\1/p')
    [ "$status" = done ] && break
    [ "$status" = failed ] && fail "sweep ended failed"
    sleep 0.1
  done
  [ "$status" = done ] || fail "sweep never finished (last status: ${status:-none})"
  echo "$id"
}

echo "smoke-store: building binaries"
go build -o "$WORK/vmat-server" ./cmd/vmat-server
go build -o "$WORK/vmat-store" ./cmd/vmat-store

echo "smoke-store: starting vmat-server (segment-bytes=${SEGMENT_BYTES})"
start_server

echo "smoke-store: running a ${CELLS}-cell sweep across several segment rolls"
SWEEP_ID=$(run_sweep)
curl -fsS "$BASE/v1/sweeps/$SWEEP_ID/results?format=csv" >"$WORK/baseline.csv"
[ -s "$WORK/baseline.csv" ] || fail "baseline CSV export is empty"

SEGS=$(ls "$WORK/store"/seg-*.vmat 2>/dev/null | wc -l)
[ "$SEGS" -ge 3 ] || fail "only $SEGS segment files on disk, want >= 3 rolls"
curl -fsS "$BASE/metrics" | grep -q '^store_segments_total ' \
  || fail "store_segments_total missing from /metrics"
curl -fsS "$BASE/healthz" | grep -q '"store"' \
  || fail "healthz has no store section"

echo "smoke-store: SIGKILLing the server ($SEGS segments on disk)"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "smoke-store: offline verify of the killed directory"
"$WORK/vmat-store" inspect "$WORK/store" >"$WORK/inspect.txt" \
  || fail "vmat-store inspect failed on the killed directory"
"$WORK/vmat-store" verify "$WORK/store" >"$WORK/verify.txt" \
  || fail "vmat-store verify failed: $(cat "$WORK/verify.txt")"
grep -q '^ok$' "$WORK/verify.txt" || fail "verify did not report ok"

echo "smoke-store: restarting on the same data dir"
start_server

# The resubmitted grid must be answered entirely from the store: same
# sweep shape, zero engine executions, and a bit-identical CSV.
for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'; then break; fi
  sleep 0.1
done
SWEEP2_ID=$(run_sweep)
VIEW=$(curl -fsS "$BASE/v1/sweeps/$SWEEP2_ID")
CACHED=$(echo "$VIEW" | sed -n 's/.*"cached":\([0-9]*\).*/\1/p')
EXECUTED=$(echo "$VIEW" | sed -n 's/.*"executed":\([0-9]*\).*/\1/p')
[ "${CACHED:-0}" -eq "$CELLS" ] \
  || fail "restarted server cached ${CACHED:-0}/${CELLS} cells (view: $VIEW)"
[ "${EXECUTED:-1}" -eq 0 ] \
  || fail "restarted server re-executed ${EXECUTED} cells (view: $VIEW)"

curl -fsS "$BASE/v1/sweeps/$SWEEP2_ID/results?format=csv" >"$WORK/after.csv"
cmp -s "$WORK/baseline.csv" "$WORK/after.csv" \
  || fail "CSV export changed across the SIGKILL/restart"

echo "smoke-store: draining"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""
grep -q "drained, bye" "$WORK/server.log" || fail "server did not drain cleanly"

echo "smoke-store: PASS"
