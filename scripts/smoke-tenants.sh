#!/usr/bin/env bash
# Multi-tenant front-door smoke test against a real vmat-server process:
# two keyed tenants (one heavily rate-limited, one generous), no
# anonymous access. Verifies 401 for missing/unknown keys, that the
# limited tenant's quota exhaustion turns into 429 with a Retry-After
# header while the other tenant keeps submitting 202s, that /healthz
# reports the shed tier once the queue saturates, that per-tenant
# metrics appear in /metrics, and that SIGHUP hot-reloads the keyfile
# (a rotated key starts working without a restart).
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18127}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "smoke-tenants: FAIL: $*" >&2
  echo "--- server log ---" >&2; cat "$WORK/server.log" >&2 || true
  exit 1
}

SPEC='{"n":30,"topology":"geometric","query":"min","attack":"drop","malicious":1,"trials":2,"seed":7}'

# bigspec SEED -> a job slow enough (~1-2s) to keep the queue occupied
# while the shell saturates it. Distinct seeds matter: identical specs
# attach to the in-flight job by content address and never queue.
bigspec() {
  echo "{\"n\":400,\"topology\":\"geometric\",\"query\":\"min\",\"attack\":\"drop\",\"malicious\":1,\"trials\":30,\"seed\":$1}"
}

# post KEY [SPEC] -> writes body to $WORK/body, headers to
# $WORK/headers, prints the status code.
post() {
  local key="$1" spec="${2:-$SPEC}"
  local auth=()
  [ -n "$key" ] && auth=(-H "Authorization: Bearer $key")
  curl -sS -o "$WORK/body" -D "$WORK/headers" -w '%{http_code}' \
    "${auth[@]}" -X POST "$BASE/v1/jobs" -d "$spec"
}

echo "smoke-tenants: building binaries"
go build -o "$WORK/vmat-server" ./cmd/vmat-server

cat > "$WORK/tenants.json" <<'EOF'
{
  "tenants": [
    {"id": "limited", "key": "limited-key", "rate": 0.2, "burst": 1, "weight": 1},
    {"id": "steady", "key": "steady-key", "rate": 100, "burst": 50, "weight": 4}
  ]
}
EOF

echo "smoke-tenants: starting vmat-server with a 2-tenant keyfile on :${PORT}"
# A tiny queue and one worker make the shed tier reachable from a shell.
"$WORK/vmat-server" -addr "127.0.0.1:${PORT}" -queue 4 -workers 1 \
  -tenants "$WORK/tenants.json" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "server never became healthy"
grep -q "multi-tenant front door on: 2 keyed tenant(s)" "$WORK/server.log" \
  || fail "server did not announce the keyfile"

echo "smoke-tenants: unauthenticated and unknown keys bounce with 401"
CODE=$(post "")
[ "$CODE" = 401 ] || fail "no key -> $CODE, want 401"
CODE=$(post "wrong-key")
[ "$CODE" = 401 ] || fail "unknown key -> $CODE, want 401"

echo "smoke-tenants: limited tenant exhausts its bucket into 429 + Retry-After"
CODE=$(post "limited-key")
[ "$CODE" = 202 ] || fail "limited tenant's first job -> $CODE, want 202"
CODE=$(post "limited-key")
[ "$CODE" = 429 ] || fail "limited tenant's second job -> $CODE, want 429"
RETRY=$(awk 'tolower($1) == "retry-after:" {print $2+0}' "$WORK/headers")
[ "${RETRY:-0}" -ge 1 ] || fail "429 carried Retry-After '${RETRY:-}', want >= 1s"
grep -q "rate limit" "$WORK/body" || fail "429 body does not name the rate limit"

echo "smoke-tenants: steady tenant keeps submitting while limited is throttled"
for i in 1 2 3; do
  CODE=$(post "steady-key")
  [ "$CODE" = 202 ] || fail "steady job $i -> $CODE, want 202 (throttling leaked across tenants)"
done

echo "smoke-tenants: tenants cannot read or cancel each other's jobs"
STEADY_JOB=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$WORK/body")
[ -n "$STEADY_JOB" ] || fail "no job id in the steady tenant's submission body"
CODE=$(curl -sS -o /dev/null -w '%{http_code}' \
  -H "Authorization: Bearer steady-key" "$BASE/v1/jobs/$STEADY_JOB")
[ "$CODE" = 200 ] || fail "steady tenant cannot read its own job -> $CODE"
CODE=$(curl -sS -o /dev/null -w '%{http_code}' \
  -H "Authorization: Bearer limited-key" "$BASE/v1/jobs/$STEADY_JOB")
[ "$CODE" = 404 ] || fail "limited tenant read steady's job -> $CODE, want 404"
CODE=$(curl -sS -o /dev/null -w '%{http_code}' -X DELETE \
  -H "Authorization: Bearer limited-key" "$BASE/v1/jobs/$STEADY_JOB")
[ "$CODE" = 404 ] || fail "limited tenant cancelled steady's job -> $CODE, want 404"

echo "smoke-tenants: saturating the queue flips /healthz to the shed tier"
# Queue capacity 4 and one worker busy on real jobs: keep pushing slow
# jobs until the steady tenant itself gets shed/queue-full, then check
# the tier while the backlog is still draining.
for i in $(seq 1 20); do
  CODE=$(post "steady-key" "$(bigspec "$i")")
  [ "$CODE" = 202 ] || break
done
HEALTH=$(curl -fsS "$BASE/healthz")
echo "$HEALTH" | grep -q '"tier":"shedding"' \
  || fail "admission tier not shedding under a saturated queue: $HEALTH"
echo "$HEALTH" | grep -q '"status":"shedding"' \
  || fail "healthz status did not escalate to shedding: $HEALTH"
[ "$CODE" = 429 ] || fail "saturated queue answered $CODE, want 429"
RETRY=$(awk 'tolower($1) == "retry-after:" {print $2+0}' "$WORK/headers")
[ "${RETRY:-0}" -ge 1 ] || fail "capacity 429 carried no Retry-After"

echo "smoke-tenants: per-tenant metrics are exposed"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q 'tenant_requests_total{tenant="limited"}' \
  || fail "no request counter for the limited tenant"
echo "$METRICS" | grep -q 'tenant_requests_total{tenant="steady"}' \
  || fail "no request counter for the steady tenant"
echo "$METRICS" | grep -Eq 'tenant_rejected_total\{[^}]*reason="rate_limited"[^}]*\} [1-9]' \
  || fail "no rate_limited rejection counted"
echo "$METRICS" | grep -q 'tenant_queue_depth{tenant="steady"}' \
  || fail "no queue-depth gauge for the steady tenant"

echo "smoke-tenants: SIGHUP hot-reloads a rotated key"
sed 's/limited-key/rotated-key/' "$WORK/tenants.json" > "$WORK/tenants.json.new"
mv "$WORK/tenants.json.new" "$WORK/tenants.json"
kill -HUP "$SERVER_PID"
for _ in $(seq 1 50); do
  if grep -q "loaded 2 tenant(s)" "$WORK/server.log"; then break; fi
  sleep 0.1
done
CODE=$(post "limited-key")
[ "$CODE" = 401 ] || fail "old key still works after reload -> $CODE"
# The rotated tenant keeps its drained bucket (429), proving live state
# survived the reload; a fresh bucket would answer 202.
CODE=$(post "rotated-key")
[ "$CODE" = 429 ] || fail "rotated key -> $CODE, want 429 (bucket state must survive reload)"

echo "smoke-tenants: draining"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on SIGTERM"
SERVER_PID=""
grep -q "drained, bye" "$WORK/server.log" || fail "server did not drain cleanly"

echo "smoke-tenants: PASS"
